package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftsfc/ftc/internal/metrics"
	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
	"github.com/ftsfc/ftc/internal/wire"
)

// Stats counts data-plane events at a replica. All fields are atomic.
type Stats struct {
	RxFrames      atomic.Uint64 // frames received
	TxFrames      atomic.Uint64 // frames forwarded to the next hop
	Egress        atomic.Uint64 // packets released out of the chain
	Held          atomic.Uint64 // packets ever held by the buffer
	Filtered      atomic.Uint64 // packets dropped by the middlebox verdict
	ParseErrors   atomic.Uint64
	StaleGen      atomic.Uint64 // packets fenced by a generation mismatch
	FencedHeld    atomic.Uint64 // held packets dropped by a generation bump
	Repairs       atomic.Uint64 // repair RPCs issued
	RepairedLogs  atomic.Uint64 // logs recovered via repair
	ApplyTimeouts atomic.Uint64 // logs that could not be repaired in time
	Duplicates    atomic.Uint64 // duplicate logs suppressed
	MBErrors      atomic.Uint64 // middlebox processing errors
	Propagating   atomic.Uint64 // propagating packets emitted
	FencedCmds    atomic.Uint64 // control commands rejected for a stale controller term

	// Goodput accounting on the inter-replica hops (bytes). AppBytesOut is
	// the application frame (headers + payload) before the trailer went on;
	// PiggybackBytesOut is everything added for replication — trailers,
	// carrier and transfer frames, spillover RPC bodies; WireBytesOut is
	// their sum, the total bytes put on chain links. Goodput is
	// AppBytesOut/WireBytesOut.
	AppBytesOut       atomic.Uint64
	PiggybackBytesOut atomic.Uint64
	WireBytesOut      atomic.Uint64
	SpilledLogs       atomic.Uint64 // logs diverted to the spillover RPC by the byte budget
}

// SchedStats exposes the scheduling layer's observability (DESIGN.md §9):
// how often workers stole a sibling's flow partition and the burst budget
// the adaptive controller last settled on. Per-queue depths and selector
// clamps live on the netsim node (QueueDepths, Clamps).
type SchedStats struct {
	Steals metrics.Counter // bursts drained from a non-home flow partition
	Burst  metrics.Gauge   // most recent per-worker burst budget
}

// Replica is one FTC chain node: it hosts a middlebox and the head of that
// middlebox's replication group, follows the F preceding middleboxes, acts
// as tail for one of them, and — at the ends of the chain — runs the
// forwarder and buffer elements (§5). Extension replicas (rings longer than
// the chain) host no middlebox and only replicate.
type Replica struct {
	cfg    Config
	ring   Ring
	idx    int
	sim    *netsim.Node
	fabric *netsim.Fabric
	egress netsim.NodeID

	mb        Middlebox
	head      *Head // nil on extension replicas
	followers map[uint16]*Follower

	gen atomic.Uint32

	// ctrlTerm is the controller fence floor: the highest orchestrator
	// leader term this replica has acknowledged. Routing/generation commands
	// below it are rejected (stats.FencedCmds).
	ctrlTerm atomic.Uint64

	routeMu sync.RWMutex
	ringIDs []netsim.NodeID

	commitMu   sync.Mutex
	commitSeen map[uint16][]uint64
	pruneTick  map[uint16]int

	fwd *forwarder    // non-nil on ring node 0
	buf *egressBuffer // non-nil on the last ring node

	diet  bool  // piggyback diet on: v2 wire, coalescing, delta updates
	ver   uint8 // wire version stamped on every message this replica builds
	tails []int // middleboxes whose group tail sits at this node (precomputed)

	wrapOnce sync.Once
	wrapped  []uint16 // middleboxes with wrapped groups (buffer bookkeeping)

	tailTick     atomic.Uint32 // commit dissemination throttle (§4.1 "periodically")
	lastCommit   atomic.Int64  // unix nanos of the last disseminated commit
	carrierOnce  sync.Once
	carrier      []byte      // prebuilt carrier frame template
	releaseDirty atomic.Bool // new wrapped-group commits since last release scan

	expiryOn   bool         // head store has TTL prefixes armed
	lastExpiry atomic.Int64 // expiry-clock nanos of the last wheel scan
	expMu      sync.Mutex   // serializes expiry scans
	expKeys    []string     // reusable CollectExpired buffer

	stats    Stats
	sched    SchedStats
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// ReplicaSpec carries the per-node wiring for NewReplica.
type ReplicaSpec struct {
	// Index is the node's ring position.
	Index int
	// Sim is the fabric node this replica runs on.
	Sim *netsim.Node
	// Fabric connects the chain.
	Fabric *netsim.Fabric
	// RingIDs are the fabric node IDs of all ring positions, in order.
	RingIDs []netsim.NodeID
	// Egress receives packets released from the chain (last node only).
	Egress netsim.NodeID
	// MB is the middlebox this node hosts; nil for extension replicas.
	MB Middlebox
	// TTLPrefixes maps a middlebox index to the key prefixes whose entries
	// age out under Config.FlowTTL (nil = no aging for that middlebox).
	// The chain derives it from each middlebox's FlowTTLer implementation;
	// a replica needs the mapping for every middlebox it follows, not just
	// the one it hosts, so follower stores arm the same TTLs as the head.
	TTLPrefixes func(mb int) []string
	// DeltaPrefixes maps a middlebox index to the key prefixes whose 8-byte
	// counter values travel as deltas under the piggyback diet (nil = no
	// delta encoding for that middlebox). The chain derives it from each
	// middlebox's DeltaPrefixer implementation; only the hosted middlebox's
	// head store classifies, so only its prefixes matter here.
	DeltaPrefixes func(mb int) []string
}

// NewReplica wires up (but does not start) a chain replica.
func NewReplica(cfg Config, spec ReplicaSpec) *Replica {
	cfg = cfg.WithDefaults()
	ring := cfg.Ring()
	r := &Replica{
		cfg:        cfg,
		ring:       ring,
		idx:        spec.Index,
		sim:        spec.Sim,
		fabric:     spec.Fabric,
		egress:     spec.Egress,
		mb:         spec.MB,
		followers:  make(map[uint16]*Follower),
		ringIDs:    append([]netsim.NodeID(nil), spec.RingIDs...),
		commitSeen: make(map[uint16][]uint64),
		pruneTick:  make(map[uint16]int),
		stopped:    make(chan struct{}),
	}
	r.gen.Store(cfg.Gen)
	r.diet = !cfg.NoDiet
	r.ver = msgV2
	if cfg.NoDiet {
		r.ver = msgV1
	}
	r.tails = ring.TailsOf(spec.Index)
	ttlFor := func(mb int) []string {
		if cfg.FlowTTL <= 0 || spec.TTLPrefixes == nil {
			return nil
		}
		return spec.TTLPrefixes(mb)
	}
	armTTL := func(st state.Backend, prefixes []string) {
		st.ConfigureExpiry(state.Expiry{
			TTL:      cfg.FlowTTL,
			Prefixes: prefixes,
			Clock:    cfg.ExpiryClock,
		})
	}
	if spec.MB != nil {
		r.head = NewHead(uint16(spec.Index), cfg.NewStore(cfg.Partitions))
		if pre := ttlFor(spec.Index); len(pre) > 0 {
			armTTL(r.head.Store(), pre)
			r.expiryOn = true
		}
		if r.diet && spec.DeltaPrefixes != nil {
			// Only the head classifies deltas (at its commit points);
			// followers merely resolve them on apply, which needs no config.
			if pre := spec.DeltaPrefixes(spec.Index); len(pre) > 0 {
				r.head.Store().ConfigureDelta(pre)
			}
		}
	}
	for _, j := range ring.FollowerOf(spec.Index) {
		f := NewFollower(uint16(j), cfg.NewStore(cfg.Partitions))
		// Followers arm the same TTL prefixes so restored/recovered stores
		// keep aging, but they never expire keys themselves: deletions only
		// arrive as replicated updates from the head.
		if pre := ttlFor(j); len(pre) > 0 {
			armTTL(f.Store(), pre)
		}
		r.followers[uint16(j)] = f
	}
	for j := 0; j < cfg.NumMB; j++ {
		r.commitSeen[uint16(j)] = make([]uint64, cfg.Partitions)
	}
	if spec.Index == 0 {
		r.fwd = newForwarder()
	}
	if spec.Index == ring.M()-1 {
		r.buf = newEgressBuffer()
	}
	return r
}

// Index returns the replica's ring position.
func (r *Replica) Index() int { return r.idx }

// SimID returns the fabric node ID the replica runs on.
func (r *Replica) SimID() netsim.NodeID { return r.sim.ID() }

// Head returns the replica's head role (nil on extension replicas).
func (r *Replica) Head() *Head { return r.head }

// Follower returns the replica's follower role for middlebox j, or nil.
func (r *Replica) Follower(j uint16) *Follower { return r.followers[j] }

// Stats exposes the replica's counters.
func (r *Replica) Stats() *Stats { return &r.stats }

// Sched exposes the scheduling layer's counters.
func (r *Replica) Sched() *SchedStats { return &r.sched }

// Gen returns the replica's current chain generation.
func (r *Replica) Gen() uint32 { return r.gen.Load() }

// SetGen fences the replica onto a new chain generation. On the chain's
// last node the egress buffer is flushed at the boundary: packets whose
// logs the outgoing lineage already committed are released, and the rest —
// the paper's "packets in flight" that a new generation no longer admits
// (§4.1) — are dropped, because the new lineage resumes log sequencing
// from a fetched vector and its commits cannot vouch for their state.
func (r *Replica) SetGen(g uint32) {
	if r.buf != nil && r.gen.Load() != g {
		r.tryRelease() // release what the old lineage committed
	}
	old := r.gen.Swap(g)
	if r.buf != nil && old != g {
		r.tryRelease() // drop the fenced remainder
	}
}

// Start launches the worker threads and, on the first node, the propagating
// timer, and registers the control-plane handlers. With more ingress queues
// than configured workers (the stealing layout, Config.NumIngressQueues),
// Workers goroutines schedule over the queues claim-based; otherwise one
// worker pins to each queue, the pre-stealing 1:1 layout.
func (r *Replica) Start() {
	r.registerControl()
	if nq := r.sim.NumQueues(); !r.cfg.NoSteal && nq > r.cfg.Workers {
		for i := 0; i < r.cfg.Workers; i++ {
			r.wg.Add(1)
			go func(i int) {
				defer r.wg.Done()
				r.runStealing(i)
			}(i)
		}
	} else {
		for q := 0; q < nq; q++ {
			r.wg.Add(1)
			go func(q int) {
				defer r.wg.Done()
				r.runPinned(q)
			}(q)
		}
	}
	if r.fwd != nil {
		r.wg.Add(1)
		go r.propagateLoop()
	}
	if r.head != nil && r.cfg.F > 0 {
		r.wg.Add(1)
		go r.resendLoop()
	}
}

// runPinned is the 1:1 worker loop: block on one ingress queue, drain up
// to the controller's budget, process, flush, repeat.
func (r *Replica) runPinned(q int) {
	w := r.newWorker()
	ctl := netsim.NewBurstController(r.cfg.Burst, r.cfg.MaxBurst)
	for {
		n := r.sim.RecvBurst(q, w.in[:ctl.Size()])
		if n == 0 {
			// Crash or shutdown mid-stream: release any state locks
			// the batch retains so post-mortem store reads (recovery,
			// digests) never block on a dead worker.
			if w.batch != nil {
				w.batch.Flush()
			}
			return
		}
		r.handleBurst(w, n)
		ctl.Observe(n, r.sim.QueueLen(q))
		r.sched.Burst.Set(int64(ctl.Size()))
	}
}

// runStealing is the work-stealing worker loop: claim a non-empty flow
// partition (home first, then the deepest backlogged sibling partition),
// drain one burst, process it AND flush its deferred effects, and only
// then release the claim. Holding the claim through the flush is what
// preserves per-flow FIFO order across claim migrations: a flow hashes to
// exactly one partition, and a partition never has frames in flight at
// two workers at once (DESIGN.md §9).
func (r *Replica) runStealing(idx int) {
	w := r.newWorker()
	ctl := netsim.NewBurstController(r.cfg.Burst, r.cfg.MaxBurst)
	sched := r.sim.NewQueueSched(idx, r.cfg.Workers)
	for {
		q, stolen := sched.Acquire()
		if q < 0 {
			if w.batch != nil {
				w.batch.Flush()
			}
			return
		}
		if stolen {
			r.sched.Steals.Inc()
		}
		n := r.sim.DrainClaimed(q, w.in[:ctl.Size()])
		if n > 0 {
			r.handleBurst(w, n)
		}
		depth := r.sim.QueueLen(q)
		sched.Release(q)
		ctl.Observe(n, depth)
		r.sched.Burst.Set(int64(ctl.Size()))
		// n == 0 is not a crash signal: a claim can be won on a queue a
		// sibling drained empty moments earlier, and a crash mid-drain is
		// caught by the next Acquire returning q == -1 — the only exit
		// path, so a live replica never sheds workers.
	}
}

// worker is one goroutine's burst-processing state: the fastPath decode
// scratch plus the deferred-work queues that let a burst pay once for what
// the per-packet path pays per frame — next-hop route resolution and sends,
// state-lock begin/commit, retransmission-buffer appends, and commit
// dissemination.
type worker struct {
	fp fastPath
	in []netsim.Inbound // drain landing zone, len == cfg.maxBurst()

	out []([]byte) // trailered frames awaiting the flush to the next hop
	egr []([]byte) // finalized frames awaiting the flush to egress
	rel []([]byte) // frames to recycle once the flush has copied them out

	batch state.Batch // head packet transactions; flushed per burst

	headLogs []Log // head retransmission-buffer appends, one addAll per burst
	pendF    []*Follower
	pendL    []Log // follower appends; pendF[i] buffers pendL[i]

	co    coalescer // open coalesced run (diet mode); never spans a flush
	spill []Log     // over-budget logs awaiting the spillover RPC at the flush
	xfer  []Log     // buffer-transfer scratch: logs minus elided markers

	last      bool // processing the burst's final frame (flush boundary)
	dissemDue bool // a commitEvery tick fired; disseminate at the boundary
}

func (r *Replica) newWorker() *worker {
	w := &worker{in: make([]netsim.Inbound, r.cfg.maxBurst())}
	if r.head != nil {
		w.batch = r.head.Store().NewBatch()
	}
	return w
}

// handleBurst runs one received burst through the pipeline and flushes the
// deferred work at its boundary. A burst of 1 (partial or Burst=1 config)
// flushes immediately after its only frame, reproducing per-packet behavior
// exactly — bursting never adds a latency floor.
func (r *Replica) handleBurst(w *worker, n int) {
	w.fp.dec.BeginBurst()
	if r.head != nil {
		// Fetch gate, held burst-wide: the batch keeps partition locks
		// between transactions, so a per-transaction read lock could deadlock
		// against a pending fetch writer. flushBurst releases it once the
		// burst's logs are in the retransmission buffer and the batch has
		// flushed — the earliest point a fetch sees a consistent cut.
		r.head.fetchMu.RLock()
	}
	for i := 0; i < n; i++ {
		w.last = i == n-1
		if !r.handleFrame(w.in[i], &w.fp, w) {
			w.rel = append(w.rel, w.in[i].Frame)
		}
	}
	r.flushBurst(w)
}

// flushBurst drains the worker's deferred queues: one burst send per
// destination, one lock acquisition per retransmission buffer, one state
// batch flush, one buffer-release scan. Frames recycle only after the burst
// sends have copied them into the fabric.
func (r *Replica) flushBurst(w *worker) {
	// Safety net for the coalescer: a run is normally closed onto the
	// burst's last data packet, but if that frame never reached the
	// transaction stage (parse error, stale gen, buffer transfer) the run is
	// still open here and rides its own propagating carrier.
	r.flushRun(w)
	if len(w.out) > 0 {
		if next := r.nextHop(); next != "" {
			if err := r.sim.SendBurstBlocking(next, w.out); err == nil {
				r.stats.TxFrames.Add(uint64(len(w.out)))
			}
		}
		clearFrames(&w.out)
	}
	if len(w.egr) > 0 {
		if r.egress == "" {
			r.stats.Egress.Add(uint64(len(w.egr)))
		} else if err := r.sim.SendBurstBlocking(r.egress, w.egr); err == nil {
			r.stats.Egress.Add(uint64(len(w.egr)))
		}
		clearFrames(&w.egr)
	}
	if len(w.headLogs) > 0 {
		r.head.Buffer().addAll(w.headLogs)
		clearLogs(&w.headLogs)
	}
	for i := 0; i < len(w.pendL); {
		f := w.pendF[i]
		j := i + 1
		for j < len(w.pendL) && w.pendF[j] == f {
			j++
		}
		f.buf.addAll(w.pendL[i:j])
		i = j
	}
	if len(w.pendL) > 0 {
		clearLogs(&w.pendL)
		for i := range w.pendF {
			w.pendF[i] = nil
		}
		w.pendF = w.pendF[:0]
	}
	if w.batch != nil {
		w.batch.Flush()
	}
	if r.head != nil {
		// End of the fetch gate (see handleBurst). Must drop before
		// maybeExpire: the expiry transaction re-enters the read lock, which
		// deadlocks if a fetch writer is already queued behind this burst.
		r.head.fetchMu.RUnlock()
	}
	if len(w.spill) > 0 {
		r.spillLogs(w.spill)
		clearLogs(&w.spill)
	}
	if r.expiryOn {
		// Flow aging rides the burst cadence: no extra goroutine touches
		// the data path, and expiry deletions enter the same log → commit →
		// release machinery as packet writes.
		r.maybeExpire()
	}
	if r.buf != nil {
		r.maybeRelease()
	}
	for _, fr := range w.rel {
		netsim.ReleaseFrame(fr)
	}
	clearFrames(&w.rel)
}

// clearFrames truncates a frame list, zeroing entries so recycled buffers
// are not pinned between bursts.
func clearFrames(s *[][]byte) {
	for i := range *s {
		(*s)[i] = nil
	}
	*s = (*s)[:0]
}

// clearLogs truncates a log list, zeroing entries so retained Vec/Updates
// arrays are not pinned between bursts.
func clearLogs(s *[]Log) {
	for i := range *s {
		(*s)[i] = Log{}
	}
	*s = (*s)[:0]
}

// Stop terminates the replica's goroutines. The underlying fabric node is
// left intact (use Crash on the netsim node to fail-stop it).
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopped)
		r.sim.Crash()
	})
	r.wg.Wait()
}

// nextHop returns the fabric ID of the next ring node, or "" on the last.
func (r *Replica) nextHop() netsim.NodeID {
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	if r.idx+1 < len(r.ringIDs) {
		return r.ringIDs[r.idx+1]
	}
	return ""
}

func (r *Replica) ringID(i int) netsim.NodeID {
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	return r.ringIDs[i]
}

// SetRoute updates the fabric ID of ring position i (recovery rerouting).
func (r *Replica) SetRoute(i int, id netsim.NodeID) {
	r.routeMu.Lock()
	if i >= 0 && i < len(r.ringIDs) {
		r.ringIDs[i] = id
	}
	r.routeMu.Unlock()
}

// fastPath is the per-worker scratch state that makes steady-state frame
// handling allocation-free: the packet view, the piggyback decode arenas,
// and the ingress message header are all reused across frames. One worker
// goroutine owns each fastPath; none of it is shared.
type fastPath struct {
	pkt     wire.Packet
	dec     MsgScratch
	ingress Message // reused header for raw-ingress packets
}

// handleFrame runs one inbound frame through the replica pipeline. It
// reports whether some stage retained ownership of in.Frame (only the
// egress buffer does, when it holds the packet); unretained frames go back
// to the frame pool. With a non-nil worker, sends and buffer appends are
// deferred to the burst flush; with nil they happen inline (per-packet
// callers: propagateLoop, tests).
func (r *Replica) handleFrame(in netsim.Inbound, fp *fastPath, w *worker) bool {
	r.stats.RxFrames.Add(1)
	pkt := &fp.pkt
	if err := wire.ParseInto(pkt, in.Frame); err != nil {
		r.stats.ParseErrors.Add(1)
		return false
	}
	var msg *Message
	if tr := pkt.Trailer(); tr != nil {
		m, err := fp.dec.Decode(tr)
		if err != nil {
			r.stats.ParseErrors.Add(1)
			return false
		}
		msg = m
	}
	gen := r.gen.Load()
	if msg == nil {
		// External ingress: only the forwarder admits raw packets.
		if r.fwd == nil {
			r.stats.ParseErrors.Add(1)
			return false
		}
		logs, commits := r.fwd.take(time.Now(), r.cfg.ResendAfter, r.cfg.PiggybackBudget)
		msg = &fp.ingress
		// Copy into the reused ingress arrays so the head-log append below
		// stays within amortized capacity instead of reallocating per packet.
		msg.Ver = r.ver
		msg.Flags = 0
		msg.FullValues = false
		msg.Gen = gen
		msg.Logs = append(msg.Logs[:0], logs...)
		msg.Commits = append(msg.Commits[:0], commits...)
		if err := pkt.InsertFTCOption(); err != nil {
			r.stats.ParseErrors.Add(1)
			return false
		}
	} else {
		if msg.Gen != gen {
			r.stats.StaleGen.Add(1)
			return false
		}
		if msg.Flags&FlagBufferTransfer != 0 {
			if r.fwd != nil {
				r.fwd.addTransfer(msg)
				r.pruneFromCommits(msg.Commits)
			}
			return false
		}
	}
	held := r.processPacket(pkt, msg, w)
	// The buffer held pkt.Buf; in.Frame is retained only if they are still
	// the same array (an in-header insert or trailer append can reallocate,
	// leaving in.Frame free to recycle while the buffer owns the copy).
	return held && len(in.Frame) > 0 && len(pkt.Buf) > 0 && &pkt.Buf[0] == &in.Frame[0]
}

// processPacket runs the full §5.1 pipeline for one packet at this replica.
// It reports whether the egress buffer took ownership of pkt.Buf. A non-nil
// worker defers sends, state commits, and buffer appends to the burst flush.
func (r *Replica) processPacket(pkt *wire.Packet, msg *Message, w *worker) bool {
	// 1. Commit vectors: merge for pruning and buffer release. A commit
	// rides the full ring — through the buffer→forwarder transfer when the
	// group wraps — so every member and the buffer see it; it retires when
	// it arrives back at the tail that mints it.
	r.mergeCommits(msg.Commits)
	kept := msg.Commits[:0]
	for _, c := range msg.Commits {
		if r.ring.IsTail(r.idx, int(c.MB)) {
			continue
		}
		kept = append(kept, c)
	}
	msg.Commits = kept

	// 2. Piggyback logs: replicate in dependency order; tails strip the log
	// they have just replicated for the f+1'th time. Burst workers sink the
	// retransmission-buffer appends for a one-pass flush at the boundary.
	var sink *[]Log
	if w != nil {
		sink = &w.pendL
	}
	keptLogs := msg.Logs[:0]
	for _, l := range msg.Logs {
		if l.Elided() {
			// Vector-only marker: the substance travels on another packet (a
			// coalesced run or the spillover RPC). Nothing to apply and never
			// stripped — the marker rides to the egress buffer, gates the
			// packet's release against the commit vector, and dies there.
			keptLogs = append(keptLogs, l)
			continue
		}
		if r.head != nil && l.MB == r.head.MB() {
			continue // our own log completed the loop (only when wrapped and repair raced)
		}
		f := r.followers[l.MB]
		if f == nil {
			keptLogs = append(keptLogs, l) // passing through (not in this group)
			continue
		}
		mb := l.MB
		if !f.waitApply(l, r.cfg.RepairEvery, func() { r.repair(mb, f) }, r.cfg.RepairDeadline, sink) {
			r.stats.ApplyTimeouts.Add(1)
			keptLogs = append(keptLogs, l)
			continue
		}
		if w != nil {
			for len(w.pendF) < len(w.pendL) {
				w.pendF = append(w.pendF, f)
			}
		}
		if r.ring.IsTail(r.idx, int(l.MB)) {
			continue // f+1 times replicated; strip (§5.1)
		}
		keptLogs = append(keptLogs, l)
	}
	msg.Logs = keptLogs

	// 3. The packet transaction (data packets only; propagating packets are
	// never handed to middleboxes, §5.1). Burst workers run it through their
	// state batch, so consecutive packets touching the same partitions pay
	// one lock acquisition, and defer the retransmission-buffer append.
	if r.head != nil && !msg.Propagating() {
		var verdict Verdict
		fn := func(tx state.Txn) error {
			v, perr := r.mb.Process(pkt, tx)
			verdict = v
			return perr
		}
		var log Log
		var err error
		batching := w != nil && w.batch != nil
		if batching {
			log, err = r.head.TransactionBatch(w.batch, fn)
		} else {
			log, err = r.head.Transaction(fn)
		}
		if err != nil {
			r.stats.MBErrors.Add(1)
			verdict = Drop
			log = Log{MB: r.head.MB(), Flags: LogNoop}
		}
		if r.diet && batching {
			r.attachDiet(msg, log, w, w.last || verdict == Drop)
		} else {
			if batching && err == nil && !log.Noop() {
				w.headLogs = append(w.headLogs, log)
			}
			if batching && !log.Noop() && r.overBudget(msg, &log) {
				// Over the byte budget: only the dependency vector rides (to
				// gate release at the egress buffer); the updates go to the
				// group followers over the spillover RPC at the flush.
				msg.Logs = append(msg.Logs, Log{MB: log.MB, Flags: log.Flags | LogElided, Vec: log.Vec})
				w.spill = append(w.spill, log)
			} else {
				msg.Logs = append(msg.Logs, log)
			}
		}
		if verdict == Drop {
			r.stats.Filtered.Add(1)
			// The filtered packet's piggyback message continues on a
			// propagating packet generated by this head (§5.1).
			msg.Flags |= FlagPropagating
			r.emitPropagating(msg, w)
			return false
		}
	}

	// 4. Tail duty: announce the latest f+1-replicated prefix. The tail
	// disseminates "periodically" (§4.1): every commitEvery'th packet and on
	// every propagating packet, so idle chains still make release progress
	// without paying a full MAX snapshot per packet. Burst workers collapse
	// the check to the burst boundary: ticks accumulate per packet, but the
	// MAX snapshot rides the burst's last packet (CommitRefresh still bounds
	// staleness in time). With Burst=1 every packet is a boundary, which is
	// exactly the per-packet schedule.
	if len(r.tails) > 0 {
		disseminate := msg.Propagating()
		if !disseminate {
			if w == nil {
				disseminate = r.tailTick.Add(1)%commitEvery == 1 || r.commitStale()
			} else {
				if r.tailTick.Add(1)%commitEvery == 1 {
					w.dissemDue = true
				}
				if w.last && (w.dissemDue || r.commitStale()) {
					disseminate = true
					w.dissemDue = false
				}
			}
		}
		if disseminate {
			// Under explicit placement a node can tail several groups; each
			// gets its commit minted here (the arithmetic layout has at most
			// one).
			for _, j := range r.tails {
				var dense []uint64
				if f := r.followers[uint16(j)]; f != nil {
					dense = f.Max()
				} else if r.head != nil && int(r.head.MB()) == j {
					dense = r.head.Vector() // F == 0: the head is its own tail
				}
				if dense != nil {
					sv := SparseFromDense(dense)
					r.mergeCommit(uint16(j), sv)
					msg.Commits = append(msg.Commits, Commit{MB: uint16(j), Vec: sv})
				}
			}
		}
	}

	// 5. Forward along the chain, or run the buffer at the chain's end.
	if r.buf != nil {
		return r.bufferStage(pkt, msg, w)
	}
	r.forward(pkt, msg, w)
	return false
}

func (r *Replica) forward(pkt *wire.Packet, msg *Message, w *worker) {
	// Encode the trailer by appending straight onto the frame: no
	// intermediate body buffer, and on pooled frames with headroom no
	// allocation at all.
	pre := len(pkt.Buf)
	if err := pkt.AppendTrailer(msg); err != nil {
		r.stats.ParseErrors.Add(1)
		return
	}
	r.stats.WireBytesOut.Add(uint64(len(pkt.Buf)))
	r.stats.PiggybackBytesOut.Add(uint64(len(pkt.Buf) - pre))
	if !msg.Propagating() {
		r.stats.AppBytesOut.Add(uint64(pre))
	} else {
		// Carrier frames are pure replication overhead, template included.
		r.stats.PiggybackBytesOut.Add(uint64(pre))
	}
	if w != nil {
		// Burst path: the frame joins the worker's outgoing burst; the
		// route resolves once for all of them at the flush.
		w.out = append(w.out, pkt.Buf)
		return
	}
	next := r.nextHop()
	if next == "" {
		return
	}
	// Blocking send: pipeline stages exert flow control on each other, like
	// the paper's DPDK rings — overload drops happen at the chain ingress,
	// never between replicas (which would cost repair round trips).
	if err := r.sim.SendBlocking(next, pkt.Buf); err == nil {
		r.stats.TxFrames.Add(1)
	}
}

// attachDiet routes a burst transaction's log through the diet machinery
// (burst workers only): write logs feed the worker's coalescer and ride the
// packet as elided vector-only markers; the coalesced run closes onto the
// burst's last data packet, onto the current packet when another worker
// interleaves a transaction on a shared partition, or onto the spillover
// path when the byte budget is hit. closing forces the run out now — the
// burst's final frame, or a Drop verdict about to divert the message onto a
// propagating carrier.
func (r *Replica) attachDiet(msg *Message, log Log, w *worker, closing bool) {
	if log.Noop() || len(log.Vec) == 0 {
		// Noops install nothing; their vector only gates this packet's
		// release. They ride elided — a full noop log would carry observed
		// sequence numbers of coalesced writes not yet shipped, blocking
		// followers — and a vec-less noop (error fallback) gates nothing, so
		// it leaves the wire entirely.
		if len(log.Vec) > 0 {
			msg.Logs = append(msg.Logs, Log{MB: log.MB, Flags: log.Flags | LogElided, Vec: log.Vec})
		}
		if closing {
			r.closeRun(msg, w)
		}
		return
	}
	if !w.co.absorb(&log) {
		r.closeRun(msg, w) // interleaved writer: the run can't extend; close it here
		w.co.absorb(&log)
	}
	if closing {
		r.closeRun(msg, w) // the run — including this transaction — rides this packet
		return
	}
	msg.Logs = append(msg.Logs, Log{MB: log.MB, Flags: LogElided, Vec: log.Vec})
}

// closeRun finalizes the worker's open coalesced run onto msg — or, when it
// would blow the packet's byte budget, onto the spillover path with only an
// elided marker left on the packet to gate its release.
func (r *Replica) closeRun(msg *Message, w *worker) {
	if !w.co.active {
		return
	}
	run := w.co.finalize()
	w.headLogs = append(w.headLogs, run)
	if r.overBudget(msg, &run) {
		msg.Logs = append(msg.Logs, Log{MB: run.MB, Flags: LogElided, Vec: run.Vec})
		w.spill = append(w.spill, run)
		return
	}
	msg.Logs = append(msg.Logs, run)
}

// flushRun closes a run still open at the burst flush (the last frame never
// reached the transaction stage) onto its own propagating carrier. Each of
// the run's transactions already left an elided marker on its data packet,
// so release gating is covered; only the substance needs a ride.
func (r *Replica) flushRun(w *worker) {
	if !w.co.active {
		return
	}
	run := w.co.finalize()
	w.headLogs = append(w.headLogs, run)
	if b := r.cfg.PiggybackBudget; b > 0 && 16+logLenEstimate(&run) > b {
		w.spill = append(w.spill, run) // too big even for a carrier frame
		return
	}
	msg := &Message{Ver: r.ver, Gen: r.gen.Load(), Logs: []Log{run}}
	r.emitPropagating(msg, w)
}

// overBudget reports whether attaching l would push the packet's piggyback
// trailer past Config.PiggybackBudget.
func (r *Replica) overBudget(msg *Message, l *Log) bool {
	b := r.cfg.PiggybackBudget
	if b <= 0 {
		return false
	}
	return msg.LenEstimate()+logLenEstimate(l) > b
}

// spillLogs pushes over-budget logs of this node's own middlebox to its
// group followers over the spillover RPC, full values forced (a spilled
// delta would need receiver context the RPC path does not guarantee).
// Failures are ignored: the logs sit in the head's retransmission buffer,
// and the resend loop re-pushes anything whose commits stall.
func (r *Replica) spillLogs(logs []Log) {
	if r.head == nil || len(logs) == 0 {
		return
	}
	mb := int(r.head.MB())
	msg := &Message{Ver: r.ver, FullValues: true, Gen: r.gen.Load(), Logs: logs}
	body := msg.Encode(nil)
	r.stats.SpilledLogs.Add(uint64(len(logs)))
	members := r.ring.Members(mb)
	for _, m := range members[1:] {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := r.fabric.Call(ctx, r.sim.ID(), r.ringID(m), rpcSpill, body)
		cancel()
		if err == nil {
			r.stats.WireBytesOut.Add(uint64(len(body)))
			r.stats.PiggybackBytesOut.Add(uint64(len(body)))
		}
	}
}

// mergeCommit folds a commit vector into the replica's view. Retransmission
// buffers are pruned on an amortized schedule: commits arrive on every
// packet, but an O(buffer) scan per packet would dominate the data plane
// (the paper prunes "periodically", §4.1).
func (r *Replica) mergeCommit(mb uint16, v SparseVec) {
	r.commitMu.Lock()
	seen, ok := r.commitSeen[mb]
	if !ok {
		seen = make([]uint64, r.cfg.Partitions)
		r.commitSeen[mb] = seen
	}
	for _, e := range v {
		if int(e.Part) < len(seen) && e.Seq > seen[e.Part] {
			seen[e.Part] = e.Seq
		}
	}
	if r.buf != nil {
		// Any middlebox's commit can unblock held packets: elided markers
		// gate release on every group, not just wrapped ones.
		r.releaseDirty.Store(true)
	}
	r.pruneTick[mb]++
	due := r.pruneTick[mb] >= 128
	if due {
		r.pruneTick[mb] = 0
	}
	var snapshot []uint64
	if due {
		snapshot = CloneDense(seen)
	}
	r.commitMu.Unlock()
	if !due {
		return
	}
	if r.head != nil && r.head.MB() == mb {
		r.head.Buffer().Prune(snapshot)
	}
	if f := r.followers[mb]; f != nil {
		f.Prune(snapshot)
	}
}

// mergeCommits folds a whole message's commit vectors into the replica's
// view under a single commitMu acquisition (mergeCommit pays one per
// vector). Due prunes are collected under the lock and executed outside it,
// preserving mergeCommit's lock ordering.
func (r *Replica) mergeCommits(commits []Commit) {
	if len(commits) == 0 {
		return
	}
	var dueMB []uint16
	var dueSnap [][]uint64
	r.commitMu.Lock()
	for _, c := range commits {
		seen, ok := r.commitSeen[c.MB]
		if !ok {
			seen = make([]uint64, r.cfg.Partitions)
			r.commitSeen[c.MB] = seen
		}
		for _, e := range c.Vec {
			if int(e.Part) < len(seen) && e.Seq > seen[e.Part] {
				seen[e.Part] = e.Seq
			}
		}
		if r.buf != nil {
			r.releaseDirty.Store(true) // see mergeCommit
		}
		r.pruneTick[c.MB]++
		if r.pruneTick[c.MB] >= 128 {
			r.pruneTick[c.MB] = 0
			dueMB = append(dueMB, c.MB)
			dueSnap = append(dueSnap, CloneDense(seen))
		}
	}
	r.commitMu.Unlock()
	for i, mb := range dueMB {
		if r.head != nil && r.head.MB() == mb {
			r.head.Buffer().Prune(dueSnap[i])
		}
		if f := r.followers[mb]; f != nil {
			f.Prune(dueSnap[i])
		}
	}
}

func (r *Replica) pruneFromCommits(commits []Commit) {
	r.mergeCommits(commits)
}

func (r *Replica) commitSnapshot(mb uint16) []uint64 {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	return CloneDense(r.commitSeen[mb])
}

// repair fetches missing logs for middlebox mb from this replica's group
// predecessor (§4.1: "a replica requests its predecessor to retransmit").
func (r *Replica) repair(mb uint16, f *Follower) {
	pred := r.ring.PredecessorInGroup(r.idx, int(mb))
	if pred < 0 {
		return
	}
	r.stats.Repairs.Add(1)
	req := encodeRepairReq(mb, f.Max())
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := r.fabric.Call(ctx, r.sim.ID(), r.ringID(pred), rpcRepair, req)
	if err != nil {
		return
	}
	m, err := DecodeMessage(resp)
	if err != nil {
		return
	}
	for _, l := range m.Logs {
		switch f.Apply(l) {
		case Applied:
			r.stats.RepairedLogs.Add(1)
		case Duplicate:
			r.stats.Duplicates.Add(1)
		}
	}
}

// emitPropagating sends msg through the rest of the chain on a synthetic
// packet (idle-timer propagation, filtered packets, §5.1).
func (r *Replica) emitPropagating(msg *Message, w *worker) {
	msg.Flags |= FlagPropagating
	pkt := r.carrierFrom(msg.LenEstimate())
	r.stats.Propagating.Add(1)
	if r.buf != nil {
		// Last node: the propagating content goes straight to the buffer
		// stage (nothing further down the chain). Propagating packets are
		// never held, so the carrier frame is ours to recycle.
		r.bufferStage(pkt, msg, w)
		netsim.ReleaseFrame(pkt.Buf)
		return
	}
	r.forward(pkt, msg, w)
	if w != nil {
		// The carrier sits in the worker's outgoing burst until the flush
		// copies it into the fabric; recycle it after that.
		w.rel = append(w.rel, pkt.Buf)
		return
	}
	netsim.ReleaseFrame(pkt.Buf)
}

// propagateLoop is the forwarder's idle timer (§5.1): when traffic pauses,
// pending piggyback state still flows through the chain.
func (r *Replica) propagateLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.PropagateEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stopped:
			return
		case <-t.C:
			if r.sim.Crashed() {
				// Fail-stopped but never Stop()ed (the chain replaced this
				// replica): exit rather than tick forever.
				return
			}
			// Drain the whole pending backlog in bounded batches so a
			// traffic burst's worth of wrapped logs replicates promptly.
			for {
				logs, commits := r.fwd.take(time.Now(), r.cfg.ResendAfter, r.cfg.PiggybackBudget)
				if len(logs) == 0 && len(commits) == 0 {
					break
				}
				msg := &Message{Ver: r.ver, Gen: r.gen.Load(), Flags: FlagPropagating, Logs: logs, Commits: commits}
				r.processPacket(mustCarrier(), msg, nil)
				if len(logs) < takeBatch {
					break
				}
			}
		}
	}
}

// resendLoop is the head's anti-entropy timer. A head's logs normally ride
// data packets, so a frame lost between adjacent servers (a crashed
// successor not yet routed around) leaves followers with no signal that
// anything is missing once traffic pauses: repair is pull-based and only
// triggers when a later log arrives out of order. The loop watches the
// commit vector for the head's own middlebox; if it stalls behind the
// dependency vector for a full ResendAfter with no progress, the unpruned
// uncommitted logs are re-emitted on propagating carriers (followers
// suppress duplicates via their MAX vectors).
func (r *Replica) resendLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ResendAfter)
	defer t.Stop()
	mb := r.head.MB()
	var lastSum uint64
	stale := false // one full interval of lag must elapse before resending
	for {
		select {
		case <-r.stopped:
			return
		case <-t.C:
			if r.sim.Crashed() {
				return // replaced after a crash; never Stop()ed
			}
			if r.expiryOn {
				r.maybeExpire() // idle chains still age flows out
			}
			commit := r.commitSnapshot(mb)
			vec := r.head.Vector()
			var sum uint64
			lag := false
			for p := range vec {
				sum += commit[p]
				if commit[p] < vec[p] {
					lag = true
				}
			}
			if !lag || sum > lastSum {
				// Caught up, or commits still flowing: not wedged.
				lastSum = sum
				stale = false
				continue
			}
			if !stale {
				stale = true
				continue
			}
			stale = false
			// Push only the frontier: the oldest takeBatch missing logs.
			// If the stall is real loss, one batch fills the gap and commits
			// resume; if replication is merely slow (a large backlog under
			// contention), flooding every unpruned log would outrun the
			// drain and balloon the forwarder's pending set.
			logs := r.head.Buffer().Missing(commit)
			if len(logs) > takeBatch {
				logs = logs[:takeBatch]
			}
			if b := r.cfg.PiggybackBudget; b > 0 {
				// Oversize logs cannot ride a carrier frame (it is a data
				// frame, MTU applies); re-push those over the spillover RPC.
				carry := logs[:0]
				var oversize []Log
				for _, l := range logs {
					if 16+logLenEstimate(&l) > b {
						oversize = append(oversize, l)
					} else {
						carry = append(carry, l)
					}
				}
				logs = carry
				r.spillLogs(oversize)
			}
			if len(logs) > 0 {
				msg := &Message{Ver: r.ver, Gen: r.gen.Load(), Logs: logs}
				r.emitPropagating(msg, nil)
			}
		}
	}
}

// expiryNow reads the expiry clock (Config.ExpiryClock or wall time).
func (r *Replica) expiryNow() int64 {
	if r.cfg.ExpiryClock != nil {
		return r.cfg.ExpiryClock()
	}
	return time.Now().UnixNano()
}

// maybeExpire runs one throttled expiry scan at the head. Callers are the
// burst boundary and the resend tick; the CAS keeps concurrent workers from
// duplicating the scan (same pattern as commitStale).
func (r *Replica) maybeExpire() {
	now := r.expiryNow()
	last := r.lastExpiry.Load()
	if now-last < int64(r.cfg.ExpiryEvery) {
		return
	}
	if !r.lastExpiry.CompareAndSwap(last, now) {
		return
	}
	r.expireOnce(now)
}

// expireOnce turns up to ExpiryBatch due keys into one replicated deletion
// transaction and emits its log on a propagating carrier, so expiry flows
// through the normal log → commit → release machinery and follower stores
// converge to the head's. DeleteExpired re-validates each key under the
// transaction: a flow refreshed between collection and commit survives.
// Returns the number of deletions installed.
func (r *Replica) expireOnce(now int64) int {
	r.expMu.Lock()
	defer r.expMu.Unlock()
	st := r.head.Store()
	keys := st.CollectExpired(now, r.cfg.ExpiryBatch, r.expKeys[:0])
	r.expKeys = keys[:0]
	if len(keys) == 0 {
		return 0
	}
	deleted := 0
	log, err := r.head.Transaction(func(tx state.Txn) error {
		deleted = 0 // reset on wound-wait/OCC re-execution
		et, _ := tx.(state.ExpiryTxn)
		for _, k := range keys {
			if et != nil {
				ok, err := et.DeleteExpired(k, now)
				if err != nil {
					return err
				}
				if ok {
					deleted++
				}
			} else {
				if err := tx.Delete(k); err != nil {
					return err
				}
				deleted++
			}
		}
		return nil
	})
	if err != nil || log.Noop() {
		return 0
	}
	msg := &Message{Ver: r.ver, Gen: r.gen.Load(), Logs: []Log{log}}
	r.emitPropagating(msg, nil)
	return deleted
}

// ExpireNow synchronously drains every due key at this replica's head,
// looping until the TTL wheels report nothing further. Tests and the chaos
// harness use it (via Chain.TriggerExpiry) to force deterministic expiry
// after advancing a manual expiry clock; production aging runs through
// maybeExpire on the burst/resend cadence instead. Returns deletions
// installed.
func (r *Replica) ExpireNow() int {
	if r.head == nil || !r.expiryOn {
		return 0
	}
	total := 0
	for {
		n := r.expireOnce(r.expiryNow())
		total += n
		if n == 0 {
			return total
		}
	}
}

// commitEvery throttles tail commit dissemination and the buffer's
// commit-view transfers to once per this many packets; Config.CommitRefresh
// bounds the staleness in time at low rates.
const commitEvery = 16

// commitStale reports (and refreshes) whether the time-based commit
// dissemination deadline has passed.
func (r *Replica) commitStale() bool {
	now := time.Now().UnixNano()
	last := r.lastCommit.Load()
	if now-last < int64(r.cfg.CommitRefresh) {
		return false
	}
	return r.lastCommit.CompareAndSwap(last, now)
}

// carrierTemplate returns the replica's prebuilt carrier frame (built once;
// the lazy init used to race when two workers emitted carriers at once).
func (r *Replica) carrierTemplate() []byte {
	r.carrierOnce.Do(func() { r.carrier = mustCarrier().Buf })
	return r.carrier
}

// carrierFrom builds a carrier packet from the replica's prebuilt template
// on a pooled frame sized for the trailer, avoiding a full header build +
// checksum + allocation per control frame. The caller owns the frame and
// recycles it via netsim.ReleaseFrame once it is copied into the fabric.
func (r *Replica) carrierFrom(trailerCap int) *wire.Packet {
	tmpl := r.carrierTemplate()
	buf := netsim.AcquireFrame(len(tmpl) + trailerCap + 8)[:len(tmpl)]
	copy(buf, tmpl)
	p, err := wire.Parse(buf)
	if err != nil {
		panic("core: carrier template unparseable: " + err.Error())
	}
	return p
}

func buildCarrierPacket() (*wire.Packet, error) {
	return wire.BuildUDP(wire.UDPSpec{
		SrcMAC:  wire.MAC{0x02, 0xf7, 0xc0, 0, 0, 1},
		DstMAC:  wire.MAC{0x02, 0xf7, 0xc0, 0, 0, 2},
		Src:     wire.Addr4(169, 254, 0, 1), // link-local: never routed outside
		Dst:     wire.Addr4(169, 254, 0, 2),
		SrcPort: 0xF7C0, DstPort: 0xF7C0,
		Headroom: 256,
	})
}

func mustCarrier() *wire.Packet {
	p, err := buildCarrierPacket()
	if err != nil {
		panic("core: carrier packet build failed: " + err.Error())
	}
	return p
}

// HeldPackets reports how many packets the buffer currently holds (last
// node only; 0 elsewhere).
func (r *Replica) HeldPackets() int {
	if r.buf == nil {
		return 0
	}
	return r.buf.len()
}
