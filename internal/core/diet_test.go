package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
	"github.com/ftsfc/ftc/internal/wire"
)

// countDeltaMB is countMB with its counter key opted into delta encoding.
type countDeltaMB struct{ countMB }

func (c *countDeltaMB) DeltaPrefixes() []string { return []string{c.key} }

// dietFlowMB bumps a per-flow counter (one key per source port), so bursts of
// distinct flows exercise coalescing across many partitions, and the keys
// are delta-classified.
type dietFlowMB struct{ prefix string }

func (f *dietFlowMB) Name() string { return "dflow-" + f.prefix }

func (f *dietFlowMB) DeltaPrefixes() []string { return []string{f.prefix} }

func (f *dietFlowMB) Process(p *wire.Packet, tx state.Txn) (Verdict, error) {
	_, err := counterBump(tx, fmt.Sprintf("%s%d", f.prefix, p.UDP.SrcPort))
	if err != nil {
		return Drop, err
	}
	return Forward, nil
}

// sampleV2Message exercises every v2-only encoding form: a delta update, a
// delete, a full value, and a coalesced log with a base vector.
func sampleV2Message() *Message {
	return &Message{
		Ver: msgV2,
		Gen: 9,
		Logs: []Log{
			{
				MB:  1,
				Vec: NewSparseVec(VecEntry{Part: 3, Seq: 17}),
				Updates: []state.Update{
					{Key: "ctr", Partition: 3, Flags: state.UpdateDelta, Delta: -5},
					{Key: "gone", Partition: 3},
					{Key: "blob", Value: []byte("xyz"), Partition: 3},
				},
			},
			{
				MB:    2,
				Flags: LogCoalesced,
				Vec:   NewSparseVec(VecEntry{Part: 0, Seq: 40}, VecEntry{Part: 5, Seq: 8}),
				Base:  NewSparseVec(VecEntry{Part: 0, Seq: 33}, VecEntry{Part: 5, Seq: 8}),
				Updates: []state.Update{
					{Key: "k0", Value: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Partition: 0},
				},
			},
			{
				MB:    2,
				Flags: LogElided,
				Vec:   NewSparseVec(VecEntry{Part: 1, Seq: 2}),
			},
		},
		Commits: []Commit{{MB: 1, Vec: NewSparseVec(VecEntry{Part: 3, Seq: 16})}},
	}
}

func TestMessageV2RoundTrip(t *testing.T) {
	m := sampleV2Message()
	got, err := DecodeMessage(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("v2 round trip mismatch:\n want %+v\n got  %+v", m, got)
	}
	if got.Logs[0].Updates[0].Flags&state.UpdateDelta == 0 || got.Logs[0].Updates[0].Delta != -5 {
		t.Fatalf("delta update decoded as %+v", got.Logs[0].Updates[0])
	}
	if !got.Logs[1].Coalesced() || len(got.Logs[1].Base) != 2 {
		t.Fatalf("coalesced base lost: %+v", got.Logs[1])
	}
}

func TestMessageV2FullValuesForcesDeltas(t *testing.T) {
	// Control-plane messages (FullValues) must ship the retained full value,
	// not the delta, so receivers without the base value can install it.
	m := &Message{
		Ver:        msgV2,
		FullValues: true,
		Logs: []Log{{
			MB:  0,
			Vec: NewSparseVec(VecEntry{Part: 0, Seq: 1}),
			Updates: []state.Update{{
				Key: "c", Value: []byte{0, 0, 0, 0, 0, 0, 0, 7},
				Partition: 0, Flags: state.UpdateDelta, Delta: 1,
			}},
		}},
	}
	got, err := DecodeMessage(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	u := got.Logs[0].Updates[0]
	if u.Flags&state.UpdateDelta != 0 || !bytes.Equal(u.Value, m.Logs[0].Updates[0].Value) {
		t.Fatalf("full-values update decoded as %+v", u)
	}
}

func TestMessageV2SmallerThanV1(t *testing.T) {
	// The point of the diet: the same logical message must shrink on the
	// wire. Counter traffic (short keys, delta values, small seqs) should
	// shrink well past 30%.
	m := sampleMessage()
	v1 := len(m.Encode(nil))
	m.Ver = msgV2
	v2 := len(m.Encode(nil))
	if v2 >= v1 {
		t.Fatalf("v2 encoding (%dB) not smaller than v1 (%dB)", v2, v1)
	}
	t.Logf("v1=%dB v2=%dB (%.0f%%)", v1, v2, 100*float64(v2)/float64(v1))
}

func TestV1CannotCarryCoalescedLogs(t *testing.T) {
	m := sampleV2Message()
	m.Ver = msgV1 // a coalesced log forced onto the v1 wire loses its Base
	if _, err := DecodeMessage(m.Encode(nil)); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v, want ErrDecode", err)
	}
}

func TestV2DecodeRejectsTruncation(t *testing.T) {
	enc := sampleV2Message().Encode(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestV2LenEstimateCoversEncoding(t *testing.T) {
	m := sampleV2Message()
	if got := len(m.Encode(nil)); got > m.LenEstimate() {
		t.Fatalf("encoded %d bytes > estimate %d", got, m.LenEstimate())
	}
}

// dietDigest runs a 3-middlebox chain (two shared counters plus a per-flow
// counter, all delta-classified) to quiescence and returns every head
// store's contents, after checking each follower converged to its head.
func dietDigest(t *testing.T, cfg Config, n int) map[string]string {
	t.Helper()
	mbs := []Middlebox{
		&countDeltaMB{countMB{"c0"}},
		&dietFlowMB{"fc:"},
		&countDeltaMB{countMB{"c2"}},
	}
	h := newHarness(t, cfg, mbs, netsim.Config{})
	h.sendPackets(t, n)
	h.collect(t, n, 20*time.Second)
	waitForQuiescence(t, h, uint64(n))

	digest := map[string]string{}
	ring := h.chain.Ring()
	for j := 0; j < 3; j++ {
		head := h.chain.Replica(j).Head()
		hs := head.Store().Snapshot()
		for _, u := range hs {
			digest[u.Key] = string(u.Value)
		}
		for _, i := range ring.Members(j)[1:] {
			fs := h.chain.Replica(i).Follower(uint16(j)).Store().Snapshot()
			if len(fs) != len(hs) {
				t.Fatalf("mb %d follower at %d: %d keys, head has %d", j, i, len(fs), len(hs))
			}
			for k := range hs {
				if hs[k].Key != fs[k].Key || !bytes.Equal(hs[k].Value, fs[k].Value) {
					t.Fatalf("mb %d follower at %d diverged at %q: head=%x follower=%x",
						j, i, hs[k].Key, hs[k].Value, fs[k].Value)
				}
			}
		}
	}
	return digest
}

// TestDietEquivalence is the tentpole's correctness gate: with the diet on
// (delta encoding, coalescing, elided markers) and off (fixed-width v1),
// the same traffic must leave byte-identical state on both engines, and
// every follower must converge to its head either way.
func TestDietEquivalence(t *testing.T) {
	engines := map[string]func(int) state.Backend{
		"2pl": nil,
		"occ": func(p int) state.Backend { return state.NewOCC(p) },
	}
	const n = 300
	for name, newStore := range engines {
		t.Run(name, func(t *testing.T) {
			base := testConfig()
			base.NewStore = newStore
			on := base
			off := base
			off.NoDiet = true
			dOn := dietDigest(t, on, n)
			dOff := dietDigest(t, off, n)
			if len(dOn) != len(dOff) {
				t.Fatalf("diet on: %d keys, off: %d keys", len(dOn), len(dOff))
			}
			for k, v := range dOff {
				if dOn[k] != v {
					t.Fatalf("key %q: diet on=%x off=%x", k, []byte(dOn[k]), []byte(v))
				}
			}
		})
	}
}

// TestDietConsistencyUnderLossAndReorder runs the diet path through a lossy,
// reordering fabric: coalesced runs, elided markers, and delta updates must
// repair to head/follower byte equality regardless of which carriers die.
func TestDietConsistencyUnderLossAndReorder(t *testing.T) {
	cfg := testConfig()
	mbs := []Middlebox{
		&countDeltaMB{countMB{"c0"}},
		&dietFlowMB{"fc:"},
		&countDeltaMB{countMB{"c2"}},
	}
	h := newHarness(t, cfg, mbs, netsim.Config{
		Seed: 42,
		DefaultLink: netsim.LinkProfile{
			LossRate:    0.05,
			Latency:     100 * time.Microsecond,
			ReorderRate: 0.2,
		},
	})
	const n = 400
	h.sendPackets(t, n)
	// Count survivors until the chain goes quiet.
	var got int
	deadline := time.After(20 * time.Second)
	idle := 0
	for idle < 400 {
		select {
		case <-deadline:
			idle = 1 << 30
		default:
		}
		if _, ok := h.sink.TryRecv(0); ok {
			got++
			idle = 0
		} else {
			idle++
			time.Sleep(2 * time.Millisecond)
		}
	}
	if got < n/2 {
		t.Fatalf("only %d of %d packets survived", got, n)
	}
	waitForQuiescence(t, h, 0)
	ring := h.chain.Ring()
	for j := 0; j < 3; j++ {
		head := h.chain.Replica(j).Head()
		hs := head.Store().Snapshot()
		for _, i := range ring.Members(j)[1:] {
			fs := h.chain.Replica(i).Follower(uint16(j)).Store().Snapshot()
			if len(fs) != len(hs) {
				t.Fatalf("mb %d follower at %d: %d keys, head has %d", j, i, len(fs), len(hs))
			}
			for k := range hs {
				if hs[k].Key != fs[k].Key || !bytes.Equal(hs[k].Value, fs[k].Value) {
					t.Fatalf("mb %d follower at %d diverged at %q", j, i, hs[k].Key)
				}
			}
		}
	}
}

// TestDietCrashRecovery crashes a replica mid-chain under the diet and
// verifies recovery: the fetch path must ship full values (a recovering
// store has no delta context) and buffered coalesced logs intact.
func TestDietCrashRecovery(t *testing.T) {
	mbs := []Middlebox{
		&countDeltaMB{countMB{"c0"}},
		&countDeltaMB{countMB{"c1"}},
		&dietFlowMB{"fc:"},
	}
	h := newHarness(t, testConfig(), mbs, netsim.Config{})
	const n1 = 150
	h.sendPackets(t, n1)
	h.collect(t, n1, 15*time.Second)
	waitForQuiescence(t, h, n1)

	h.chain.Crash(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nr, err := h.chain.Replace(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := nr.Head().Store().Get("c1")
	if !ok || binary.BigEndian.Uint64(v) != n1 {
		t.Fatalf("recovered delta-classified head counter = %v %v, want %d", v, ok, n1)
	}
	fv, ok := nr.Follower(0).Store().Get("c0")
	if !ok || binary.BigEndian.Uint64(fv) != n1 {
		t.Fatalf("recovered follower state = %v %v", fv, ok)
	}

	const n2 = 100
	h.sendPackets(t, n2)
	h.collect(t, n2, 15*time.Second)
	waitForQuiescence(t, h, n1+n2)
	v2, _ := nr.Head().Store().Get("c1")
	if binary.BigEndian.Uint64(v2) != n1+n2 {
		t.Fatalf("post-recovery counter = %d, want %d", binary.BigEndian.Uint64(v2), n1+n2)
	}
}

// TestDietBudgetFitsStandardMTU is the byte-budget acceptance scenario: 2 kB
// of per-packet state cannot ride a 1500-byte MTU inline (see
// TestChainNeedsJumboFramesForLargeState), but with a piggyback budget the
// oversize logs spill to the background push path, packets carry only
// vec-only markers, and the chain works at the standard MTU.
func TestDietBudgetFitsStandardMTU(t *testing.T) {
	cfg := testConfig()
	cfg.PiggybackBudget = 600
	f := netsim.New(netsim.Config{DefaultLink: netsim.LinkProfile{MTU: 1500}})
	defer f.Stop()
	gen := f.AddNode("gen", netsim.NodeConfig{QueueCap: 1 << 14})
	sink := f.AddNode("sink", netsim.NodeConfig{QueueCap: 1 << 14})
	ch := NewChain(cfg, f, "ftc", []Middlebox{&bigStateMB{2000}, &countMB{"c1"}}, "sink")
	ch.Start()
	defer ch.Stop()
	const n = 20
	for i := 0; i < n; i++ {
		p, err := wire.BuildUDP(wire.UDPSpec{
			SrcMAC: wire.MAC{2, 0, 0, 0, 0, 1}, DstMAC: wire.MAC{2, 0, 0, 0, 0, 2},
			Src: wire.Addr4(10, 3, 0, byte(i)), Dst: wire.Addr4(192, 0, 2, 1),
			SrcPort: uint16(4000 + i), DstPort: 80, Headroom: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen.Send(ch.IngressID(), p.Buf)
	}
	deadline := time.Now().Add(15 * time.Second)
	var got int
	for got < n && time.Now().Before(deadline) {
		if _, ok := sink.TryRecv(0); ok {
			got++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if got != n {
		t.Fatalf("budgeted 1500B-MTU egress = %d, want %d", got, n)
	}
	if err := ch.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The 2 kB value reached the follower via the spill path.
	fol := ch.Replica(ch.Ring().Tail(0)).Follower(0)
	bv, ok := fol.Store().Get("big")
	if !ok || len(bv) != 2000 {
		t.Fatalf("spilled state at follower = %d bytes, ok=%v, want 2000", len(bv), ok)
	}
	if ch.Replica(0).Stats().SpilledLogs.Load() == 0 {
		t.Fatal("no logs were spilled; budget did not engage")
	}
}

// TestPiggybackBudgetCapsTrailer checks the budget is honoured on the data
// path: with many distinct flows and a small budget, no data frame's
// piggyback trailer may exceed budget plus one log (the attach rule admits
// the log that crosses the line, never two).
func TestPiggybackBudgetCapsTrailer(t *testing.T) {
	cfg := testConfig()
	cfg.PiggybackBudget = 256
	mbs := []Middlebox{&dietFlowMB{"fa:"}, &dietFlowMB{"fb:"}}
	h := newHarness(t, cfg, mbs, netsim.Config{})
	const n = 200
	h.sendPackets(t, n)
	h.collect(t, n, 20*time.Second)
	waitForQuiescence(t, h, n)
	for j := 0; j < 2; j++ {
		hs := h.chain.Replica(j).Head().Store().Snapshot()
		tail := h.chain.Ring().Tail(j)
		fs := h.chain.Replica(tail).Follower(uint16(j)).Store().Snapshot()
		if len(fs) != len(hs) {
			t.Fatalf("mb %d: follower %d keys, head %d", j, len(fs), len(hs))
		}
	}
}

func TestPlanGroupsUniformMatchesConsecutive(t *testing.T) {
	uniform := func(int) float64 { return 1 }
	for _, tc := range []struct{ n, f, cap int }{{4, 1, 1}, {3, 2, 2}, {5, 2, 4}, {2, 2, 3}} {
		got := PlanGroups(tc.n, tc.f, tc.cap, uniform)
		if got == nil {
			t.Fatalf("n=%d f=%d cap=%d: planner returned nil", tc.n, tc.f, tc.cap)
		}
		base := Ring{N: tc.n, F: tc.f}
		for j := 0; j < tc.n; j++ {
			if !reflect.DeepEqual(got[j], base.Members(j)) {
				t.Fatalf("n=%d f=%d cap=%d mb %d: plan %v, consecutive %v",
					tc.n, tc.f, tc.cap, j, got[j], base.Members(j))
			}
		}
	}
}

func TestPlanGroupsInfeasibleReturnsNil(t *testing.T) {
	uniform := func(int) float64 { return 1 }
	if g := PlanGroups(4, 2, 1, uniform); g != nil { // 1*4 < 2*4
		t.Fatalf("infeasible capacity produced %v", g)
	}
	if g := PlanGroups(4, 0, 8, uniform); g != nil {
		t.Fatalf("f=0 produced %v", g)
	}
	if g := PlanGroups(4, 1, 0, uniform); g != nil {
		t.Fatalf("capacity=0 produced %v", g)
	}
}

func TestPlanGroupsRespectsCapacityAndOrder(t *testing.T) {
	n, f, cap := 6, 2, 3
	cost := func(j int) float64 { return float64((j*7)%5) + 1 }
	g := PlanGroups(n, f, cap, cost)
	if g == nil {
		t.Fatal("feasible plan returned nil")
	}
	r := Ring{N: n, F: f}
	m := r.M()
	load := make([]int, m)
	for j := 0; j < n; j++ {
		if len(g[j]) != f+1 || g[j][0] != j {
			t.Fatalf("mb %d group %v: want head-first, size %d", j, g[j], f+1)
		}
		prev := 0
		for _, p := range g[j][1:] {
			d := ((p-j)%m + m) % m
			if d <= prev {
				t.Fatalf("mb %d group %v: ring distances not strictly increasing", j, g[j])
			}
			prev = d
			load[p]++
		}
	}
	for p, l := range load {
		if l > cap {
			t.Fatalf("node %d hosts %d follower roles, capacity %d", p, l, cap)
		}
	}
}

// TestRingGroupsConsecutiveEquivalence pins that a Groups table spelling out
// the consecutive layout answers every topology query exactly like the
// arithmetic rule, including the extension-replica case (N < F+1).
func TestRingGroupsConsecutiveEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{5, 2}, {2, 2}, {3, 1}, {4, 3}} {
		base := Ring{N: tc.n, F: tc.f}
		groups := make([][]int, tc.n)
		for j := 0; j < tc.n; j++ {
			groups[j] = base.Members(j)
		}
		tab := Ring{N: tc.n, F: tc.f, Groups: groups}
		m := base.M()
		if tab.M() != m {
			t.Fatalf("n=%d f=%d: M %d != %d", tc.n, tc.f, tab.M(), m)
		}
		for j := 0; j < tc.n; j++ {
			if base.Tail(j) != tab.Tail(j) || base.Wrapped(j) != tab.Wrapped(j) {
				t.Fatalf("n=%d f=%d mb %d: tail/wrapped mismatch", tc.n, tc.f, j)
			}
			if !reflect.DeepEqual(base.Members(j), tab.Members(j)) {
				t.Fatalf("members mismatch for mb %d", j)
			}
			for i := 0; i < m; i++ {
				if base.IsMember(i, j) != tab.IsMember(i, j) ||
					base.IsTail(i, j) != tab.IsTail(i, j) ||
					base.PredecessorInGroup(i, j) != tab.PredecessorInGroup(i, j) ||
					base.SuccessorInGroup(i, j) != tab.SuccessorInGroup(i, j) {
					t.Fatalf("n=%d f=%d node %d mb %d: group-walk mismatch", tc.n, tc.f, i, j)
				}
			}
		}
		for i := 0; i < m; i++ {
			// FollowerOf's listing order is unspecified; compare as sets.
			bf, tf := base.FollowerOf(i), tab.FollowerOf(i)
			sort.Ints(bf)
			sort.Ints(tf)
			if !reflect.DeepEqual(bf, tf) ||
				base.TailOf(i) != tab.TailOf(i) ||
				!reflect.DeepEqual(base.TailsOf(i), tab.TailsOf(i)) {
				t.Fatalf("n=%d f=%d node %d: follower/tail listing mismatch", tc.n, tc.f, i)
			}
		}
	}
}

// TestChainCostAwarePlacement runs a chain end to end with the placement
// planner engaged (CarrierCapacity set) and verifies the plan took effect
// and replication still converges.
func TestChainCostAwarePlacement(t *testing.T) {
	cfg := testConfig()
	cfg.CarrierCapacity = 1
	mbs := []Middlebox{
		&countDeltaMB{countMB{"c0"}},
		&countDeltaMB{countMB{"c1"}},
		&countDeltaMB{countMB{"c2"}},
		&countDeltaMB{countMB{"c3"}},
	}
	h := newHarness(t, cfg, mbs, netsim.Config{})
	if h.chain.Config().Groups == nil {
		t.Fatal("planner did not produce a placement")
	}
	const n = 150
	h.sendPackets(t, n)
	h.collect(t, n, 15*time.Second)
	waitForQuiescence(t, h, n)
	ring := h.chain.Ring()
	for j := 0; j < 4; j++ {
		key := fmt.Sprintf("c%d", j)
		v, ok := h.chain.Replica(j).Head().Store().Get(key)
		if !ok || binary.BigEndian.Uint64(v) != n {
			t.Fatalf("mb %d head = %v %v", j, v, ok)
		}
		for _, i := range ring.Members(j)[1:] {
			fv, ok := h.chain.Replica(i).Follower(uint16(j)).Store().Get(key)
			if !ok || binary.BigEndian.Uint64(fv) != n {
				t.Fatalf("mb %d follower at %d = %v %v", j, i, fv, ok)
			}
		}
	}
}

// TestDietGoodput is the tentpole's performance gate: on a counter chain the
// diet must cut piggyback wire bytes enough to lift goodput (application
// bytes per wire byte) by at least 1.3x over the v1 baseline.
func TestDietGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("goodput measurement")
	}
	run := func(noDiet bool) (app, wireB uint64) {
		cfg := testConfig()
		cfg.NoDiet = noDiet
		mbs := []Middlebox{
			&countDeltaMB{countMB{"c0"}},
			&dietFlowMB{"fc:"},
			&countDeltaMB{countMB{"c2"}},
		}
		h := newHarness(t, cfg, mbs, netsim.Config{})
		const n = 600
		h.sendPackets(t, n)
		h.collect(t, n, 20*time.Second)
		waitForQuiescence(t, h, n)
		for i := 0; i < h.chain.Len(); i++ {
			s := h.chain.Replica(i).Stats()
			app += s.AppBytesOut.Load()
			wireB += s.WireBytesOut.Load()
		}
		return app, wireB
	}
	appOff, wireOff := run(true)
	appOn, wireOn := run(false)
	gOff := float64(appOff) / float64(wireOff)
	gOn := float64(appOn) / float64(wireOn)
	t.Logf("goodput: diet off %.4f (%d/%d), diet on %.4f (%d/%d), ratio %.2fx",
		gOff, appOff, wireOff, gOn, appOn, wireOn, gOn/gOff)
	if gOn < 1.3*gOff {
		t.Fatalf("diet goodput %.4f < 1.3x baseline %.4f", gOn, gOff)
	}
}
