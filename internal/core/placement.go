package core

import "sort"

// PlanGroups computes a cost-aware replication placement: for each of the n
// middleboxes it picks f follower nodes on the ring of m = max(n, f+1)
// servers, charging each follower role against the node's CarrierCapacity
// and assigning the costliest states first so they get the nearest-downstream
// (shortest piggyback ride) slots still free. cost(j) is middlebox j's
// estimated per-packet piggyback byte cost (see CarrierCoster).
//
// The returned groups are in packet-traversal order from the head (strictly
// increasing ring distance), as Ring.Groups requires. When every node has
// capacity for f follower roles the plan degenerates to the consecutive
// layout Ring uses by default. PlanGroups returns nil — meaning "use the
// default consecutive layout" — when f <= 0, capacity <= 0, or the total
// capacity cannot host f roles per middlebox.
func PlanGroups(n, f, capacity int, cost func(mb int) float64) [][]int {
	r := Ring{N: n, F: f}
	m := r.M()
	if n <= 0 || f <= 0 || capacity <= 0 || capacity*m < f*n {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost(order[a]) > cost(order[b])
	})
	load := make([]int, m)
	groups := make([][]int, n)
	for _, j := range order {
		g := make([]int, 1, f+1)
		g[0] = j
		for d := 1; d < m && len(g) < f+1; d++ {
			p := (j + d) % m
			if load[p] < capacity {
				load[p]++
				g = append(g, p)
			}
		}
		if len(g) < f+1 {
			// A greedy dead end (capacity was total-feasible but this head's
			// reachable nodes are saturated): fall back to the default layout
			// rather than ship a partial plan.
			return nil
		}
		groups[j] = g
	}
	return groups
}
