package core

import "github.com/ftsfc/ftc/internal/state"
import "github.com/ftsfc/ftc/internal/wire"

type probeCounter struct{ key string }

func (p *probeCounter) Name() string { return "probe-" + p.key }

func (p *probeCounter) Process(_ *wire.Packet, tx state.Txn) (Verdict, error) {
	v, _, err := tx.Get(p.key)
	if err != nil {
		return Drop, err
	}
	return Forward, tx.Put(p.key, append(v[:0:0], 1))
}

// ForwarderPending reports the forwarder's pending log count (first node).
func (r *Replica) ForwarderPending() int {
	if r.fwd == nil {
		return 0
	}
	return r.fwd.pendingLen()
}
