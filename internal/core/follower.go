package core

import (
	"sync"
	"time"

	"github.com/ftsfc/ftc/internal/state"
)

// Follower is a replica of a middlebox's state at one of the f succeeding
// servers in its replication group (§5). It applies piggybacked state
// updates in dependency-vector order, keeps the MAX vector of what it has
// replicated in order, and buffers applied logs so it can serve repair
// requests from its own successor.
//
// Non-dependent transactions apply concurrently: a log only locks the
// partitions its vector names, so worker threads replicating disjoint
// transactions proceed in parallel (§4.3's multithreaded replication).
type Follower struct {
	mb    uint16
	store state.Backend
	buf   *logBuffer

	locks []sync.Mutex // per-partition apply locks; max[p] is guarded by locks[p]
	max   []uint64

	notifyMu sync.Mutex
	// notify is closed when MAX advances and lazily recreated by the next
	// waiter, so the in-order fast path (no one waiting) allocates nothing.
	notify chan struct{}
}

// ApplyOutcome reports what Apply did with a log.
type ApplyOutcome int

// Apply outcomes.
const (
	// Applied: the log was in order; updates installed, MAX advanced.
	Applied ApplyOutcome = iota
	// Duplicate: the log had already been applied (repair or recovery replay).
	Duplicate
	// Blocked: prior logs are missing; the caller must wait or repair.
	Blocked
)

// NewFollower creates a follower replica for middlebox mb.
func NewFollower(mb uint16, store state.Backend) *Follower {
	return &Follower{
		mb:    mb,
		store: store,
		buf:   newLogBuffer(),
		locks: make([]sync.Mutex, store.NumPartitions()),
		max:   make([]uint64, store.NumPartitions()),
	}
}

// MB returns the middlebox index this follower replicates.
func (f *Follower) MB() uint16 { return f.mb }

// Store returns the replica state store.
func (f *Follower) Store() state.Backend { return f.store }

// Buffer returns the follower's retransmission buffer.
func (f *Follower) Buffer() *logBuffer { return f.buf }

// lockVec acquires the apply locks for every partition in v (ascending, so
// concurrent Apply calls cannot deadlock).
func (f *Follower) lockVec(v SparseVec) {
	for _, e := range v {
		f.locks[e.Part].Lock()
	}
}

func (f *Follower) unlockVec(v SparseVec) {
	for _, e := range v {
		f.locks[e.Part].Unlock()
	}
}

// Apply attempts to apply one piggyback log. It never blocks: a log whose
// dependencies are unmet returns Blocked and the caller decides whether to
// wait (WaitApply) or request repair.
func (f *Follower) Apply(l Log) ApplyOutcome { return f.apply(l, nil) }

// apply is Apply with an optional retransmission-buffer sink: when sink is
// non-nil, an installed log's retained copy is appended to *sink instead of
// the buffer, so burst workers can append a whole burst's logs under one
// buffer lock at the flush. MAX still advances here, atomically with the
// install — only the buffer append is deferred (repair requests racing the
// deferral retry within RepairEvery).
func (f *Follower) apply(l Log, sink *[]Log) ApplyOutcome {
	if len(l.Vec) == 0 {
		return Applied // touched nothing; nothing to order or install
	}
	f.lockVec(l.Vec)
	defer f.unlockVec(l.Vec)
	if l.Coalesced() {
		return f.applyCoalescedLocked(l, sink)
	}
	if l.Vec.SupersededBy(f.max) {
		return Duplicate
	}
	if !l.Vec.SatisfiedBy(f.max) {
		return Blocked
	}
	if l.Noop() {
		return Applied // dependencies met; nothing to install or advance
	}
	if l.Vec.SupersededByAny(f.max) {
		// Partially ahead can only mean a duplicate racing recovery state;
		// installing again would be idempotent but advancing is not needed.
		return Duplicate
	}
	// The decoder hands each update a freshly allocated value that nothing
	// mutates afterwards, so the store takes ownership instead of copying.
	f.store.ApplyOwned(l.Updates)
	l.Vec.AdvanceInto(f.max)
	// The log's Vec/Updates arrays may live in a per-worker decode scratch;
	// clone them before the retransmission buffer outlives the packet.
	if sink != nil {
		*sink = append(*sink, l.Retain())
	} else {
		f.buf.add(l.Retain())
	}
	f.wake()
	return Applied
}

// applyCoalescedLocked installs a burst-coalesced log (apply locks held).
// Vec holds the run's last sequence per partition and Base its first.
//
// Each partition applies INDEPENDENTLY: a run is an encoding artifact, not
// a transaction — the protocol's ordering constraint is per partition (the
// dependency vectors define nothing stronger), and a run's per-key updates
// are themselves per partition. Demanding the whole run apply atomically
// deadlocks: two workers' concurrently open runs can interleave on
// different partitions in opposite orders (run A covers part p before run
// C but part q after it), leaving each run waiting on the other's base.
// Per-partition application makes progress on every delivery; partitions
// left behind complete on a later resend or repair retransmission.
//
// A partition whose MAX lands strictly inside the run (a recovery snapshot
// already holds a prefix of the run's writes — the head's vector advances
// per transaction, not per run) still applies when the updates carry full
// values: re-installing last-writer values is idempotent. A delta update
// would double-count there, so such a partition waits for the full-value
// form that repair serves from the predecessor's buffer.
func (f *Follower) applyCoalescedLocked(l Log, sink *[]Log) ApplyOutcome {
	var upds []state.Update
	applied, behind := false, false
	for i := range l.Vec {
		p, end, base := l.Vec[i].Part, l.Vec[i].Seq, l.Base[i].Seq
		switch {
		case f.max[p] > end:
			continue // this partition already past the run
		case f.max[p] < base:
			behind = true // earlier logs missing; leave for repair/resend
			continue
		case f.max[p] > base:
			// Mid-run: only idempotent full values may re-install.
			delta := false
			for j := range l.Updates {
				u := &l.Updates[j]
				if u.Partition == p && u.Value == nil && u.Flags&state.UpdateDelta != 0 {
					delta = true
					break
				}
			}
			if delta {
				behind = true
				continue
			}
		}
		for j := range l.Updates {
			if l.Updates[j].Partition == p {
				upds = append(upds, l.Updates[j])
			}
		}
		f.max[p] = end + 1
		applied = true
	}
	if !applied {
		if behind {
			return Blocked
		}
		return Duplicate
	}
	f.store.ApplyOwned(upds)
	if sink != nil {
		*sink = append(*sink, l.Retain())
	} else {
		f.buf.add(l.Retain())
	}
	f.wake()
	return Applied
}

// SupersededByAny reports whether any touched partition is already ahead.
func (v SparseVec) SupersededByAny(max []uint64) bool {
	for _, e := range v {
		if int(e.Part) < len(max) && max[e.Part] > e.Seq {
			return true
		}
	}
	return false
}

func (f *Follower) wake() {
	f.notifyMu.Lock()
	if f.notify != nil {
		close(f.notify)
		f.notify = nil
	}
	f.notifyMu.Unlock()
}

func (f *Follower) notifyCh() chan struct{} {
	f.notifyMu.Lock()
	defer f.notifyMu.Unlock()
	if f.notify == nil {
		f.notify = make(chan struct{})
	}
	return f.notify
}

// WaitApply applies l, blocking while its dependencies are unmet. Each time
// the wait exceeds repairEvery, onRepair is invoked (if non-nil) so the
// caller can fetch missing logs from the group predecessor; logs returned by
// repair should be fed through Apply by the callback. WaitApply gives up
// and reports false after deadline (zero means wait forever).
func (f *Follower) WaitApply(l Log, repairEvery time.Duration, onRepair func(), deadline time.Duration) bool {
	return f.waitApply(l, repairEvery, onRepair, deadline, nil)
}

// waitApply is WaitApply with an optional buffer sink (see apply).
func (f *Follower) waitApply(l Log, repairEvery time.Duration, onRepair func(), deadline time.Duration, sink *[]Log) bool {
	var elapsed time.Duration
	for {
		switch f.apply(l, sink) {
		case Applied, Duplicate:
			return true
		case Blocked:
		}
		ch := f.notifyCh()
		// Re-check after taking the channel: an Apply that advanced MAX
		// between our Apply and notifyCh would otherwise be missed.
		if out := f.apply(l, sink); out != Blocked {
			return true
		}
		wait := repairEvery
		if wait <= 0 {
			wait = 5 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			if onRepair != nil {
				onRepair()
			}
			elapsed += wait
			if deadline > 0 && elapsed >= deadline {
				return false
			}
		}
	}
}

// Max snapshots the follower's MAX dependency vector.
func (f *Follower) Max() []uint64 {
	for i := range f.locks {
		f.locks[i].Lock()
	}
	out := CloneDense(f.max)
	for i := len(f.locks) - 1; i >= 0; i-- {
		f.locks[i].Unlock()
	}
	return out
}

// Fetch atomically snapshots the follower's MAX vector, retransmission
// buffer and store under all apply locks. Recovery must ship a consistent
// cut: a MAX torn against the snapshot would make a delta update, or a
// multi-partition log racing the copy, double-apply or vanish at the
// recovered replica.
func (f *Follower) Fetch() (max []uint64, logs []Log, snap []state.Update) {
	for i := range f.locks {
		f.locks[i].Lock()
	}
	max = CloneDense(f.max)
	logs = f.buf.all()
	snap = f.store.Snapshot()
	for i := len(f.locks) - 1; i >= 0; i-- {
		f.locks[i].Unlock()
	}
	return max, logs, snap
}

// RestoreMax installs a MAX vector (recovery initialization).
func (f *Follower) RestoreMax(v []uint64) {
	for i := range f.locks {
		f.locks[i].Lock()
	}
	for i := range f.max {
		if i < len(v) {
			f.max[i] = v[i]
		} else {
			f.max[i] = 0
		}
	}
	for i := len(f.locks) - 1; i >= 0; i-- {
		f.locks[i].Unlock()
	}
	f.wake()
}

// Prune drops buffered logs covered by the commit vector.
func (f *Follower) Prune(commit []uint64) { f.buf.Prune(commit) }

// Missing returns buffered logs a peer with the given MAX still needs.
func (f *Follower) Missing(max []uint64) []Log { return f.buf.Missing(max) }
