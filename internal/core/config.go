package core

import (
	"time"

	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
)

// Config holds the FTC protocol parameters shared by all replicas of a
// chain.
type Config struct {
	// F is the number of simultaneous replica failures tolerated. State is
	// replicated to F+1 replicas (§3.1).
	F int
	// NumMB is the number of middleboxes in the chain.
	NumMB int
	// Partitions is the state-partition count per middlebox store. It must
	// exceed the maximum worker count to keep lock contention low (§4.2).
	Partitions int
	// Workers is the number of packet-processing threads per replica.
	Workers int
	// Burst is the vector-processing batch size: each worker drains up to
	// this many frames per ingress wakeup and amortizes route resolution,
	// state-lock acquisition, retransmission-buffer appends, and commit
	// dissemination across them (DPDK-style burst processing). Partial
	// bursts flush immediately, so bursting adds no latency floor; Burst=1
	// degenerates to per-packet processing. Burst 0 — the default — selects
	// the NAPI-style adaptive controller: each worker's burst starts at 1,
	// doubles toward MaxBurst while its queue stays backlogged, and halves
	// toward 1 when drains come up short (DESIGN.md §9).
	Burst int
	// MaxBurst caps the adaptive controller's growth (default
	// netsim.DefaultMaxBurst). Ignored when Burst > 0 pins a fixed size.
	MaxBurst int
	// NoSteal pins workers 1:1 onto ingress queues (the pre-stealing
	// layout). By default, with Workers > 1, each replica node exposes
	// Workers×StealFactor ingress queues that double as steal-granularity
	// flow partitions: a worker drains its home partitions first and steals
	// the deepest backlogged sibling partition when they run empty,
	// preserving per-flow FIFO order (DESIGN.md §9).
	NoSteal bool
	// StealFactor is the number of flow partitions (ingress queues) per
	// worker when stealing is enabled (default 8). More partitions steal at
	// a finer grain but cost more scan work per scheduling decision.
	StealFactor int
	// QueueCap is the per-ingress-queue capacity in frames.
	QueueCap int
	// PropagateEvery is the forwarder's idle timer: with no incoming
	// traffic, a propagating packet carries pending piggyback state through
	// the chain at this period (§5.1).
	PropagateEvery time.Duration
	// RepairEvery is how long a follower waits for a missing predecessor
	// log before requesting retransmission from its group predecessor.
	RepairEvery time.Duration
	// RepairDeadline bounds the total wait for a missing log; packets whose
	// logs cannot be repaired within it are counted and passed on.
	RepairDeadline time.Duration
	// ResendAfter is how long the forwarder waits for a pending piggyback
	// log to be committed before attaching it to another packet.
	ResendAfter time.Duration
	// CommitRefresh bounds how stale a tail's disseminated commit vector
	// may get: commits ride every commitEvery'th packet, but at low rates a
	// time-based refresh keeps buffer-release latency bounded.
	CommitRefresh time.Duration
	// Gen is the chain generation; recovery bumps it to fence stale
	// in-flight packets (§4.1 "will no longer admit packets in flight").
	Gen uint32
	// NewStore builds the state engine for each replica store. Defaults to
	// the pessimistic state.New (wound-wait 2PL); state.NewOCC selects the
	// optimistic engine (§3.2's HTM-style adaptation).
	NewStore func(partitions int) state.Backend
	// FlowTTL, when positive, ages idle flow entries out of middlebox
	// stores: keys matching a middlebox's FlowTTLer prefixes expire FlowTTL
	// after their last write or transactional read. Expiry runs at the head
	// on burst boundaries and resend ticks — never on followers — and each
	// expired key becomes an ordinary replicated deletion, so store digests
	// stay equal across the replication group. Zero (the default) disables
	// aging; existing workloads and baselines are unaffected.
	FlowTTL time.Duration
	// ExpiryEvery throttles how often a head scans its TTL wheels (default
	// 1ms). Scans are capped at ExpiryBatch keys, so a backlog of expired
	// flows drains over several bursts instead of stalling one.
	ExpiryEvery time.Duration
	// ExpiryBatch caps the replicated deletions per expiry scan (default
	// 256).
	ExpiryBatch int
	// ExpiryClock overrides the expiry time source (nanoseconds; must be
	// positive). Nil means wall clock. Tests and the chaos harness inject a
	// manual clock to force or forbid expiry deterministically.
	ExpiryClock func() int64
	// NoDiet disables the piggyback diet: replicas speak the fixed-width v1
	// wire format, burst coalescing and delta encoding are off, and every
	// transaction's log rides its own packet in full. The diet is on by
	// default; NoDiet exists for baselines, equivalence tests, and talking
	// to pre-diet peers.
	NoDiet bool
	// PiggybackBudget caps the piggyback trailer bytes attached to one data
	// packet. A log that would push the trailer past the budget is elided
	// from the packet (its dependency vector still rides, gating release at
	// the egress buffer) and its updates spill to the group followers over
	// the background spillover RPC. Zero means unlimited — the pre-budget
	// behavior, where oversized state can overflow the MTU and drop frames.
	PiggybackBudget int
	// Groups, when non-nil, pins each middlebox's replication group to an
	// explicit list of ring positions (head first) instead of the paper's
	// F+1-consecutive-successors rule. Normally produced by the cost-aware
	// placement planner (see PlanGroups) rather than written by hand.
	Groups [][]int
	// CarrierCapacity, when positive, bounds how many follower replicas each
	// ring node may host and turns on cost-aware carrier placement: chains
	// built through NewChain ask each middlebox for its per-packet carrier
	// cost and assign the costliest states to the nearest downstream nodes
	// with free capacity. Zero keeps the consecutive-successors layout.
	CarrierCapacity int
}

// WithDefaults fills zero fields with production defaults.
func (c Config) WithDefaults() Config {
	if c.F <= 0 {
		c.F = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Burst < 0 {
		c.Burst = 0 // adaptive
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = netsim.DefaultMaxBurst
	}
	if c.Burst > c.MaxBurst {
		c.MaxBurst = c.Burst
	}
	if c.StealFactor <= 0 {
		c.StealFactor = DefaultStealFactor
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.PropagateEvery <= 0 {
		c.PropagateEvery = time.Millisecond
	}
	if c.RepairEvery <= 0 {
		c.RepairEvery = 2 * time.Millisecond
	}
	if c.RepairDeadline <= 0 {
		c.RepairDeadline = 2 * time.Second
	}
	if c.ResendAfter <= 0 {
		// Resend covers *lost* transfer frames, so it must sit well above
		// the normal commit latency (ring traversal + dissemination period);
		// resending live-but-uncommitted logs snowballs message sizes.
		c.ResendAfter = 4 * c.PropagateEvery
		if c.ResendAfter < 10*time.Millisecond {
			c.ResendAfter = 10 * time.Millisecond
		}
	}
	if c.CommitRefresh <= 0 {
		c.CommitRefresh = 200 * time.Microsecond
	}
	if c.NewStore == nil {
		c.NewStore = func(partitions int) state.Backend { return state.New(partitions) }
	}
	if c.ExpiryEvery <= 0 {
		c.ExpiryEvery = time.Millisecond
	}
	if c.ExpiryBatch <= 0 {
		c.ExpiryBatch = 256
	}
	return c
}

// DefaultBurst is the classic fixed vector-processing batch size, matching
// the paper testbed's DPDK burst of 32 frames per poll. Since the adaptive
// controller became the default (Burst=0), it remains the fixed-burst
// reference point for baselines and equivalence tests.
const DefaultBurst = 32

// DefaultStealFactor is the default number of flow partitions (ingress
// queues) per worker when work stealing is enabled.
const DefaultStealFactor = 8

// maxBurst returns the largest burst a worker may drain — the fixed size,
// or the adaptive cap. Receive buffers are sized with it.
func (c Config) maxBurst() int {
	if c.Burst > 0 {
		return c.Burst
	}
	return c.MaxBurst
}

// NumIngressQueues is the ingress-queue count a replica node needs under
// this config: Workers queues pinned 1:1 when stealing is off or moot
// (single worker), Workers×StealFactor flow partitions otherwise. Keeping
// the partition count a multiple of Workers makes the stride home layout
// (partition p homes on worker p mod Workers) agree with RSS hashing at
// either queue count.
func (c Config) NumIngressQueues() int {
	if c.NoSteal || c.Workers <= 1 {
		return c.Workers
	}
	return c.Workers * c.StealFactor
}

// Ring derives the chain's logical ring from the configuration.
func (c Config) Ring() Ring { return Ring{N: c.NumMB, F: c.F, Groups: c.Groups} }
