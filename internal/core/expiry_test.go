package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
)

// ttlFlowMB is flowMB with its per-flow counters opted into TTL aging.
type ttlFlowMB struct{ flowMB }

func (m *ttlFlowMB) FlowTTLPrefixes() []string { return []string{m.prefix + "-"} }

// expiryClockBase keeps the manual expiry clock positive and far from zero,
// so tick arithmetic never degenerates (nowTick 0 means "expiry off").
const expiryClockBase = int64(1e15)

// runExpiryWorkload runs the lossy burst workload with FlowTTL armed on the
// flow middleboxes and a manual expiry clock, then jumps the clock past the
// TTL and forces expiry. It returns the delivered count, the digest after
// normal traffic, and the digest after every flow entry aged out.
func runExpiryWorkload(t *testing.T, burst, n int, newStore func(int) state.Backend) (int, string, string) {
	t.Helper()
	var offset atomic.Int64
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Burst = burst
	cfg.NewStore = newStore
	cfg.FlowTTL = time.Hour
	cfg.ExpiryClock = func() int64 { return expiryClockBase + offset.Load() }
	mbs := []Middlebox{
		&ttlFlowMB{flowMB{"a"}},
		&countMB{"c1"},
		&ttlFlowMB{flowMB{"b"}},
	}
	h := newHarness(t, cfg, mbs, netsim.Config{Seed: 42})
	h.fabric.SetLink("gen", h.chain.IngressID(), netsim.LinkProfile{LossRate: 0.15})

	h.sendPackets(t, n)
	ids := drainSink(t, h, 30*time.Second)
	waitForQuiescence(t, h, 0)
	pre := storeDigest(h)
	if !strings.Contains(pre, "a-") || !strings.Contains(pre, "b-") {
		t.Fatalf("workload left no flow keys to expire:\n%s", pre)
	}

	// Two hours pass: every flow entry is due. The deletions must replicate
	// through the normal log machinery before the chain re-quiesces.
	offset.Add(int64(2 * time.Hour))
	if deleted := h.chain.TriggerExpiry(); deleted == 0 {
		t.Fatal("TriggerExpiry deleted nothing")
	}
	waitForQuiescence(t, h, 0)
	if err := h.chain.CheckConvergence(); err != nil {
		t.Fatalf("after expiry: %v", err)
	}
	post := storeDigest(h)
	for _, line := range strings.Split(post, "\n") {
		if strings.HasPrefix(line, "a-") || strings.HasPrefix(line, "b-") {
			t.Fatalf("flow key survived forced expiry: %q", line)
		}
	}
	if !strings.Contains(post, "c1=") {
		t.Fatalf("shared counter c1 expired:\n%s", post)
	}
	return len(ids), pre, post
}

// TestExpiryBurstEquivalence extends the burst=1 vs burst=32 equivalence
// proof across flow aging: with FlowTTL armed, both burst sizes must produce
// identical chain-wide digests before and after forced expiry, on both
// engines, and expiry must remove exactly the flow-prefixed keys from every
// head and follower store.
func TestExpiryBurstEquivalence(t *testing.T) {
	engines := []struct {
		name     string
		newStore func(int) state.Backend
	}{
		{"2pl", nil},
		{"occ", func(p int) state.Backend { return state.NewOCC(p) }},
	}
	const n = 400
	for _, e := range engines {
		e := e
		t.Run(e.name, func(t *testing.T) {
			n1, pre1, post1 := runExpiryWorkload(t, 1, n, e.newStore)
			n32, pre32, post32 := runExpiryWorkload(t, 32, n, e.newStore)
			if n1 == 0 || n1 == n {
				t.Fatalf("loss link ineffective: %d of %d delivered", n1, n)
			}
			if n1 != n32 {
				t.Fatalf("delivered %d packets at burst=1, %d at burst=32", n1, n32)
			}
			if pre1 != pre32 {
				t.Fatalf("pre-expiry digests diverge:\nburst=1:\n%s\nburst=32:\n%s", pre1, pre32)
			}
			if post1 != post32 {
				t.Fatalf("post-expiry digests diverge:\nburst=1:\n%s\nburst=32:\n%s", post1, post32)
			}
		})
	}
}

// TestExpiryRefreshKeepsActiveFlows checks the other half of the TTL
// contract at chain level: traffic arriving within the TTL refreshes a
// flow, so repeated sends plus a sub-TTL clock advance expire nothing.
func TestExpiryRefreshKeepsActiveFlows(t *testing.T) {
	var offset atomic.Int64
	cfg := testConfig()
	cfg.FlowTTL = time.Hour
	cfg.ExpiryClock = func() int64 { return expiryClockBase + offset.Load() }
	mbs := []Middlebox{&ttlFlowMB{flowMB{"a"}}, &countMB{"c1"}}
	h := newHarness(t, cfg, mbs, netsim.Config{Seed: 7})

	h.sendPackets(t, 50)
	drainSink(t, h, 30*time.Second)
	waitForQuiescence(t, h, 0)

	// Half a TTL passes, then the same flows send again (refresh)...
	offset.Add(int64(30 * time.Minute))
	h.sendPackets(t, 50)
	drainSink(t, h, 30*time.Second)
	waitForQuiescence(t, h, 0)

	// ...so another half-TTL later nothing is due.
	offset.Add(int64(45 * time.Minute))
	if deleted := h.chain.TriggerExpiry(); deleted != 0 {
		t.Fatalf("refreshed flows expired: %d deletions", deleted)
	}
	pre := storeDigest(h)
	if !strings.Contains(pre, "a-") {
		t.Fatalf("flow keys missing before their TTL:\n%s", pre)
	}

	// A full idle TTL finally ages them out.
	offset.Add(int64(2 * time.Hour))
	if deleted := h.chain.TriggerExpiry(); deleted == 0 {
		t.Fatal("idle flows never expired")
	}
	waitForQuiescence(t, h, 0)
	if err := h.chain.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}
