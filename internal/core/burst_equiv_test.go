package core

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
	"github.com/ftsfc/ftc/internal/wire"
)

// flowMB keeps one counter per flow (destination port), so the final state
// depends on exactly which packets survived — a stronger equivalence digest
// than a single shared counter.
type flowMB struct{ prefix string }

func (m *flowMB) Name() string { return "flow-" + m.prefix }

func (m *flowMB) Process(p *wire.Packet, tx state.Txn) (Verdict, error) {
	if _, err := counterBump(tx, fmt.Sprintf("%s-%d", m.prefix, p.UDP.DstPort)); err != nil {
		return Drop, err
	}
	return Forward, nil
}

// payloadID extracts the sequence number sendPackets embeds as "pkt-%06d".
func payloadID(t testing.TB, p *wire.Packet) int {
	t.Helper()
	var id int
	if _, err := fmt.Sscanf(string(p.Payload()), "pkt-%06d", &id); err != nil {
		t.Fatalf("egress payload %q unparseable: %v", p.Payload(), err)
	}
	return id
}

// drainSink collects payload IDs at the sink until the chain is silent and
// the egress buffer is empty.
func drainSink(t testing.TB, h *testHarness, timeout time.Duration) []int {
	t.Helper()
	var ids []int
	deadline := time.Now().Add(timeout)
	idle := 0
	for {
		if in, ok := h.sink.TryRecv(0); ok {
			p, err := wire.Parse(in.Frame)
			if err != nil {
				t.Fatalf("egress packet unparseable: %v", err)
			}
			ids = append(ids, payloadID(t, p))
			idle = 0
			continue
		}
		if idle > 300 && h.chain.Replica(h.chain.Len()-1).HeldPackets() == 0 {
			return ids
		}
		if time.Now().After(deadline) {
			t.Fatalf("chain did not drain: %d collected, %d still held",
				len(ids), h.chain.Replica(h.chain.Len()-1).HeldPackets())
		}
		idle++
		time.Sleep(2 * time.Millisecond)
	}
}

// storeDigest is the chain-wide store digest (now exported as
// Chain.StoreDigest for the chaos harness; the tests keep this shim).
func storeDigest(h *testHarness) string { return h.chain.StoreDigest() }

// workloadOpts selects one scheduling configuration for runSchedWorkload.
type workloadOpts struct {
	burst   int // 0 = adaptive controller
	workers int
	noSteal bool
}

// runBurstWorkload pushes n packets through a fresh chain at the given burst
// size. Loss is confined to the generator→ingress link: its per-link rng is
// seeded from the fabric seed and consumed in send order, and the single test
// goroutine sends sequentially, so the set of surviving packets is a pure
// function of the seed — identical across burst sizes. Inside the chain all
// links are reliable and flow-controlled, so every survivor must egress.
// Returns the sorted delivered IDs and the converged state digest.
func runBurstWorkload(t *testing.T, burst, n int, newStore func(int) state.Backend) ([]int, string) {
	return runSchedWorkload(t, workloadOpts{burst: burst, workers: 1}, n, newStore)
}

// runSchedWorkload is runBurstWorkload generalized over worker count and
// scheduler mode, for the stealing/adaptive equivalence proofs. The
// delivered set stays a pure function of the fabric seed because loss
// happens on the generator link before any scheduling decision, and the
// state digest stays order-independent because the workload's middleboxes
// only bump commutative per-flow counters.
func runSchedWorkload(t *testing.T, o workloadOpts, n int, newStore func(int) state.Backend) ([]int, string) {
	t.Helper()
	cfg := testConfig()
	cfg.Workers = o.workers
	cfg.Burst = o.burst
	cfg.NoSteal = o.noSteal
	cfg.NewStore = newStore
	mbs := []Middlebox{&flowMB{"a"}, &countMB{"c1"}, &flowMB{"b"}}
	h := newHarness(t, cfg, mbs, netsim.Config{Seed: 42})
	h.fabric.SetLink("gen", h.chain.IngressID(), netsim.LinkProfile{LossRate: 0.15})

	h.sendPackets(t, n)
	ids := drainSink(t, h, 30*time.Second)
	waitForQuiescence(t, h, 0)

	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("%+v: packet %d delivered twice", o, id)
		}
		if id < 0 || id >= n {
			t.Fatalf("%+v: delivered unknown packet %d", o, id)
		}
		seen[id] = true
	}
	sort.Ints(ids)
	return ids, storeDigest(h)
}

// TestBurstEquivalence is the burst=1 vs burst=32 equivalence proof: under
// deterministic ingress loss, both burst sizes must deliver exactly the same
// packets and converge every head and follower store to exactly the same
// state, on both concurrency-control engines. Burst 1 exercises the
// degenerate flush-after-every-frame path, which must behave like the
// original per-packet pipeline.
func TestBurstEquivalence(t *testing.T) {
	engines := []struct {
		name     string
		newStore func(int) state.Backend
	}{
		{"2pl", nil},
		{"occ", func(p int) state.Backend { return state.NewOCC(p) }},
	}
	const n = 400
	for _, e := range engines {
		e := e
		t.Run(e.name, func(t *testing.T) {
			ids1, dig1 := runBurstWorkload(t, 1, n, e.newStore)
			ids32, dig32 := runBurstWorkload(t, 32, n, e.newStore)
			if len(ids1) == 0 || len(ids1) == n {
				t.Fatalf("loss link ineffective: %d of %d delivered", len(ids1), n)
			}
			if len(ids1) != len(ids32) {
				t.Fatalf("delivered %d packets at burst=1, %d at burst=32", len(ids1), len(ids32))
			}
			for i := range ids1 {
				if ids1[i] != ids32[i] {
					t.Fatalf("delivered sets diverge at %d: burst=1 has %d, burst=32 has %d",
						i, ids1[i], ids32[i])
				}
			}
			if dig1 != dig32 {
				t.Fatalf("state digests diverge:\nburst=1:\n%s\nburst=32:\n%s", dig1, dig32)
			}
		})
	}
}

// TestStealEquivalence is the scheduling counterpart of
// TestBurstEquivalence: with two workers, every scheduler configuration —
// pinned workers vs work stealing, and fixed burst 1 / fixed burst 32 /
// the adaptive controller — must deliver exactly the same packets under
// deterministic ingress loss and converge every head and follower store to
// exactly the same state, on both concurrency-control engines. Claim
// migration between workers must be invisible in the output.
func TestStealEquivalence(t *testing.T) {
	engines := []struct {
		name     string
		newStore func(int) state.Backend
	}{
		{"2pl", nil},
		{"occ", func(p int) state.Backend { return state.NewOCC(p) }},
	}
	variants := []struct {
		name string
		o    workloadOpts
	}{
		{"nosteal-fixed32", workloadOpts{burst: 32, workers: 2, noSteal: true}},
		{"steal-fixed32", workloadOpts{burst: 32, workers: 2}},
		{"steal-fixed1", workloadOpts{burst: 1, workers: 2}},
		{"steal-adaptive", workloadOpts{burst: 0, workers: 2}},
		{"nosteal-adaptive", workloadOpts{burst: 0, workers: 2, noSteal: true}},
	}
	const n = 400
	for _, e := range engines {
		e := e
		t.Run(e.name, func(t *testing.T) {
			refIDs, refDig := runSchedWorkload(t, variants[0].o, n, e.newStore)
			if len(refIDs) == 0 || len(refIDs) == n {
				t.Fatalf("loss link ineffective: %d of %d delivered", len(refIDs), n)
			}
			for _, v := range variants[1:] {
				ids, dig := runSchedWorkload(t, v.o, n, e.newStore)
				if len(ids) != len(refIDs) {
					t.Fatalf("%s delivered %d packets, %s delivered %d",
						variants[0].name, len(refIDs), v.name, len(ids))
				}
				for i := range ids {
					if ids[i] != refIDs[i] {
						t.Fatalf("delivered sets diverge at %d: %s has %d, %s has %d",
							i, variants[0].name, refIDs[i], v.name, ids[i])
					}
				}
				if dig != refDig {
					t.Fatalf("state digests diverge:\n%s:\n%s\n%s:\n%s",
						variants[0].name, refDig, v.name, dig)
				}
			}
		})
	}
}

// TestBurstCrashMidBurst crashes and replaces a replica while bursts are in
// flight on lossy, reordering links. Whatever frames die with the replica,
// the chain must uphold its invariants: no packet egresses twice, every
// egressed packet was actually sent, and after the dust settles every
// follower store matches its head exactly. Run with -race this also shakes
// out data races between burst flushing and crash teardown.
func TestBurstCrashMidBurst(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	mbs := []Middlebox{&flowMB{"a"}, &countMB{"c1"}, &flowMB{"b"}}
	h := newHarness(t, cfg, mbs, netsim.Config{
		Seed: 9,
		DefaultLink: netsim.LinkProfile{
			Latency:     100 * time.Microsecond,
			LossRate:    0.01,
			ReorderRate: 0.05,
		},
	})

	// The sender restarts IDs 0..19 every round, so each ID is sent n/20
	// times; it runs concurrently with the crash and must not touch t.
	const n = 600
	sent := make(chan int, 1)
	go func() {
		sends := 0
		for i := 0; i < n; i++ {
			id := i % 20
			p, err := wire.BuildUDP(wire.UDPSpec{
				SrcMAC: wire.MAC{2, 0, 0, 0, 0, 1}, DstMAC: wire.MAC{2, 0, 0, 0, 0, 2},
				Src: wire.Addr4(10, 0, byte(id>>8), byte(id)), Dst: wire.Addr4(192, 0, 2, 1),
				SrcPort: uint16(1024 + id), DstPort: uint16(2000 + id%4),
				Payload:  []byte(fmt.Sprintf("pkt-%06d", id)),
				Headroom: 512,
			})
			if err != nil {
				break
			}
			if h.gen.Send(h.chain.IngressID(), p.Buf) == nil {
				sends++
			}
			if id == 19 {
				time.Sleep(time.Millisecond)
			}
		}
		sent <- sends
	}()

	// Crash the middle replica while the sender is mid-stream, then bring up
	// a replacement. Workers are draining 20-packet batches as this lands, so
	// the crash interrupts bursts between receive and flush.
	time.Sleep(15 * time.Millisecond)
	h.chain.Crash(1)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := h.chain.Replace(ctx, 1); err != nil {
		t.Fatal(err)
	}
	<-sent

	// Drain and verify: delivered ⊆ sent (IDs 0..19, parse-checked), and the
	// per-ID delivery count never exceeds the number of sends of that ID.
	counts := make(map[int]int)
	deadline := time.Now().Add(30 * time.Second)
	idle := 0
	for idle < 400 {
		if time.Now().After(deadline) {
			break
		}
		in, ok := h.sink.TryRecv(0)
		if !ok {
			idle++
			time.Sleep(2 * time.Millisecond)
			continue
		}
		idle = 0
		p, err := wire.Parse(in.Frame)
		if err != nil {
			t.Fatalf("egress packet unparseable: %v", err)
		}
		counts[payloadID(t, p)]++
	}
	var total int
	for id, c := range counts {
		if id < 0 || id >= 20 {
			t.Fatalf("delivered unknown packet id %d", id)
		}
		if c > n/20 {
			t.Fatalf("packet id %d delivered %d times, only sent %d", id, c, n/20)
		}
		total += c
	}
	if total == 0 {
		t.Fatal("nothing survived the crash")
	}
	t.Logf("delivered %d of %d across crash", total, n)

	// Replication invariant: followers converge to their heads.
	waitForQuiescence(t, h, 0)
	if err := h.chain.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}
