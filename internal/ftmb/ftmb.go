// Package ftmb reimplements the paper's comparison baseline: FTMB
// (rollback-recovery for middleboxes, Sherry et al., SIGCOMM'15), with
// exactly the simplifications the FTC paper's own prototype makes (§7.1):
//
//   - a dedicated master server (M) runs the middlebox;
//   - a second server hosts the input logger (IL) and output logger (OL);
//   - packets traverse IL → M → OL;
//   - M tracks accesses to shared state with packet access logs (PALs) and
//     transmits them to OL in separate messages;
//   - PALs are assumed delivered on the first attempt and data packets are
//     released immediately after their PAL arrives; OL retains only the
//     last PAL;
//   - no snapshots are taken unless SnapshotEvery is set, in which case the
//     master stalls for SnapshotStall at that period (the paper's
//     FTMB+Snapshot simulation adds a 6 ms delay every 50 ms, §7.4).
//
// For a chain, every middlebox gets its own master and logger servers, so
// FTMB uses 2n servers where FTC uses n (§7.4).
package ftmb

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftsfc/ftc/internal/core"
	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/state"
	"github.com/ftsfc/ftc/internal/wire"
)

// Config configures an FTMB chain.
type Config struct {
	Partitions int
	Workers    int
	QueueCap   int
	// Burst is the receive burst size of master and logger workers (default
	// core.DefaultBurst). Burst 1 degenerates to per-packet processing.
	Burst int
	// InputLogSize is the IL's ring of logged input packets.
	InputLogSize int
	// SnapshotEvery enables FTMB+Snapshot: the master pauses packet
	// processing for SnapshotStall at this period.
	SnapshotEvery time.Duration
	// SnapshotStall is the per-snapshot stall (paper: 6 ms).
	SnapshotStall time.Duration
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Burst <= 0 {
		c.Burst = core.DefaultBurst
	}
	if c.InputLogSize <= 0 {
		c.InputLogSize = 4096
	}
	if c.SnapshotEvery > 0 && c.SnapshotStall <= 0 {
		c.SnapshotStall = 6 * time.Millisecond
	}
	return c
}

// Frame kinds exchanged between FTMB elements, carried in the wire trailer.
const (
	kindData = 1
	kindPAL  = 2
)

// trailer layouts:
//
//	data: u8 kind | u64 pktID
//	pal:  u8 kind | u64 pktID | u16 nAccesses | n×(u16 partition, u64 seq)
func encodeDataTrailer(id uint64) []byte {
	b := make([]byte, 9)
	b[0] = kindData
	binary.BigEndian.PutUint64(b[1:9], id)
	return b
}

func encodePALTrailer(id uint64, accesses []palAccess) []byte {
	b := make([]byte, 0, 11+10*len(accesses))
	b = append(b, kindPAL)
	b = binary.BigEndian.AppendUint64(b, id)
	b = binary.BigEndian.AppendUint16(b, uint16(len(accesses)))
	for _, a := range accesses {
		b = binary.BigEndian.AppendUint16(b, a.partition)
		b = binary.BigEndian.AppendUint64(b, a.seq)
	}
	return b
}

// palAccess is one logged shared-state access: which state partition and
// the per-partition access sequence number, enough for deterministic replay
// ordering (FTMB's vector clocks over shared-variable accesses).
type palAccess struct {
	partition uint16
	seq       uint64
}

// Chain is an FTMB deployment of a middlebox chain.
type Chain struct {
	cfg    Config
	fabric *netsim.Fabric
	stages []*stage
}

// stage is one middlebox: its master and its IL/OL server.
type stage struct {
	cfg    Config
	mb     core.Middlebox
	store  *state.Store
	master *netsim.Node
	logger *netsim.Node
	next   netsim.NodeID // where OL releases packets to

	// master state
	pktID    atomic.Uint64
	accessCt []atomic.Uint64 // per-partition access counters for PALs
	stallMu  sync.RWMutex    // held exclusively during snapshot stalls

	// OL state
	olMu      sync.Mutex
	palSeen   map[uint64][]byte // pktID → last PAL (only the last is kept)
	dataWait  map[uint64][]byte // pktID → data frame awaiting its PAL
	lastPALID uint64

	// IL state: ring of logged input packets
	ilMu    sync.Mutex
	ilRing  [][]byte
	ilNext  int
	wg      sync.WaitGroup
	stopped chan struct{}

	released atomic.Uint64
	errs     atomic.Uint64
}

// NewChain deploys an FTMB chain: per middlebox, a master node and an IL/OL
// node; traffic enters the first IL and leaves the last OL to egress.
func NewChain(cfg Config, fabric *netsim.Fabric, name string, mbs []core.Middlebox, egress netsim.NodeID) *Chain {
	cfg = cfg.WithDefaults()
	c := &Chain{cfg: cfg, fabric: fabric}
	loggerIDs := make([]netsim.NodeID, len(mbs))
	for i := range mbs {
		loggerIDs[i] = netsim.NodeID(fmt.Sprintf("%s-ftmb-log%d", name, i))
	}
	for i, mb := range mbs {
		next := egress
		if i+1 < len(mbs) {
			next = loggerIDs[i+1]
		}
		st := &stage{
			cfg:      cfg,
			mb:       mb,
			store:    state.New(cfg.Partitions),
			next:     next,
			palSeen:  make(map[uint64][]byte),
			dataWait: make(map[uint64][]byte),
			ilRing:   make([][]byte, cfg.InputLogSize),
			stopped:  make(chan struct{}),
			accessCt: make([]atomic.Uint64, cfg.Partitions),
		}
		st.master = fabric.AddNode(netsim.NodeID(fmt.Sprintf("%s-ftmb-m%d", name, i)), netsim.NodeConfig{
			Queues:   cfg.Workers,
			QueueCap: cfg.QueueCap,
			Selector: wire.RSSSelector,
		})
		st.logger = fabric.AddNode(loggerIDs[i], netsim.NodeConfig{
			Queues:   cfg.Workers,
			QueueCap: cfg.QueueCap,
			Selector: wire.RSSSelector,
		})
		c.stages = append(c.stages, st)
	}
	return c
}

// IngressID is the first input logger's fabric node.
func (c *Chain) IngressID() netsim.NodeID { return c.stages[0].logger.ID() }

// Store returns middlebox i's master state store.
func (c *Chain) Store(i int) *state.Store { return c.stages[i].store }

// Released reports how many packets stage i's OL has released.
func (c *Chain) Released(i int) uint64 { return c.stages[i].released.Load() }

// Servers reports the number of fabric nodes the deployment uses (2 per
// middlebox — the resource-efficiency comparison of §7.4).
func (c *Chain) Servers() int { return 2 * len(c.stages) }

// Start launches all stages.
func (c *Chain) Start() {
	for _, st := range c.stages {
		st.start()
	}
}

// Stop terminates the chain.
func (c *Chain) Stop() {
	for _, st := range c.stages {
		close(st.stopped)
		st.master.Crash()
		st.logger.Crash()
	}
	for _, st := range c.stages {
		st.wg.Wait()
	}
}

func (st *stage) start() {
	for q := 0; q < st.master.NumQueues(); q++ {
		st.wg.Add(1)
		go func(q int) {
			defer st.wg.Done()
			in := make([]netsim.Inbound, st.cfg.Burst)
			batch := st.store.NewBatch()
			for {
				cnt := st.master.RecvBurst(q, in)
				if cnt == 0 {
					batch.Flush()
					return
				}
				for i := 0; i < cnt; i++ {
					st.masterHandle(in[i].Frame, batch)
					// masterHandle forwards copies; the inbound frame is dead here.
					netsim.ReleaseFrame(in[i].Frame)
					in[i] = netsim.Inbound{}
				}
				batch.Flush()
			}
		}(q)
	}
	for q := 0; q < st.logger.NumQueues(); q++ {
		st.wg.Add(1)
		go func(q int) {
			defer st.wg.Done()
			in := make([]netsim.Inbound, st.cfg.Burst)
			for {
				cnt := st.logger.RecvBurst(q, in)
				if cnt == 0 {
					return
				}
				for i := 0; i < cnt; i++ {
					st.loggerHandle(in[i])
					in[i] = netsim.Inbound{}
				}
			}
		}(q)
	}
	if st.cfg.SnapshotEvery > 0 {
		st.wg.Add(1)
		go st.snapshotLoop()
	}
}

// snapshotLoop simulates periodic consistent snapshots: packet processing
// stalls chain-wide for SnapshotStall every SnapshotEvery (§7.4).
func (st *stage) snapshotLoop() {
	defer st.wg.Done()
	t := time.NewTicker(st.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-st.stopped:
			return
		case <-t.C:
			st.stallMu.Lock()
			time.Sleep(st.cfg.SnapshotStall)
			st.stallMu.Unlock()
		}
	}
}

// loggerHandle runs both logger roles: frames from upstream are IL input
// (log + forward to master); frames from the master are either PALs or
// processed data packets for the OL to correlate and release.
func (st *stage) loggerHandle(in netsim.Inbound) {
	if in.From == st.master.ID() {
		st.olHandle(in.Frame)
		return
	}
	st.ilHandle(in.Frame)
}

// ilHandle is the input logger: it logs the packet so the master can be
// replayed after a failure, then forwards it to the master. The forward is
// non-blocking: the IL and OL share a server, and a blocking send toward a
// stalled master while the master blocks toward the logger would deadlock
// the pair — overload drops at the input, as at a real NIC.
func (st *stage) ilHandle(frame []byte) {
	logged := make([]byte, len(frame))
	copy(logged, frame)
	st.ilMu.Lock()
	st.ilRing[st.ilNext] = logged
	st.ilNext = (st.ilNext + 1) % len(st.ilRing)
	st.ilMu.Unlock()
	_ = st.logger.Send(st.master.ID(), frame)
}

// masterHandle processes one packet on the master: run the middlebox,
// collect its PAL from the state accesses, send the PAL then the packet to
// the OL. Transactions run through the worker's state batch, which retains
// partition locks across a burst; the caller flushes it at burst boundaries.
func (st *stage) masterHandle(frame []byte, batch state.Batch) {
	st.stallMu.RLock()
	defer st.stallMu.RUnlock()

	pkt, err := wire.Parse(frame)
	if err != nil {
		st.errs.Add(1)
		return
	}
	pkt.DropTrailer() // drop upstream framing; middlebox sees a clean packet

	var verdict core.Verdict
	res, err := batch.Exec(func(tx state.Txn) error {
		v, perr := st.mb.Process(pkt, tx)
		verdict = v
		return perr
	})
	if err != nil {
		st.errs.Add(1)
		return
	}
	if verdict == core.Drop {
		return
	}
	id := st.pktID.Add(1)

	// Build the PAL: FTMB logs *all* accesses to shared state, including
	// reads (§2.1, §7.3 "FTMB logs them to provide fault tolerance"), one
	// entry per touched variable with its access ordinal.
	accesses := make([]palAccess, 0, len(res.Touched))
	for _, p := range res.Touched {
		accesses = append(accesses, palAccess{partition: p, seq: st.accessCt[p].Add(1)})
	}

	// PAL travels in its own message (the separate-message cost the paper
	// calls out for sharing level 1).
	pal := mustCarrier()
	if err := pal.SetTrailer(encodePALTrailer(id, accesses)); err == nil {
		_ = st.master.SendBlocking(st.logger.ID(), pal.Buf)
	}
	if err := pkt.SetTrailer(encodeDataTrailer(id)); err != nil {
		st.errs.Add(1)
		return
	}
	_ = st.master.SendBlocking(st.logger.ID(), pkt.Buf)
}

// olHandle is the output logger: a data packet is released once its PAL has
// arrived; only the last PAL is retained (§7.1).
func (st *stage) olHandle(frame []byte) {
	pkt, err := wire.Parse(frame)
	if err != nil {
		st.errs.Add(1)
		return
	}
	body := pkt.StripTrailer()
	if len(body) < 9 {
		st.errs.Add(1)
		return
	}
	kind := body[0]
	id := binary.BigEndian.Uint64(body[1:9])
	switch kind {
	case kindPAL:
		st.olMu.Lock()
		if id > st.lastPALID {
			st.lastPALID = id
		}
		// "OL maintains only the last PAL."
		for k := range st.palSeen {
			delete(st.palSeen, k)
		}
		st.palSeen[id] = body
		// Release every data packet whose PAL (or a later one — PALs are
		// id-ordered) has now arrived.
		var ready [][]byte
		for did, data := range st.dataWait {
			if did <= st.lastPALID {
				ready = append(ready, data)
				delete(st.dataWait, did)
			}
		}
		st.olMu.Unlock()
		for _, data := range ready {
			st.releaseFrame(data)
		}
	case kindData:
		st.olMu.Lock()
		// Released when the PAL with this id (or any later PAL — PALs are
		// generated in order per worker) has arrived.
		ready := st.lastPALID >= id
		if !ready {
			buf := make([]byte, len(pkt.Buf))
			copy(buf, pkt.Buf)
			st.dataWait[id] = buf
		}
		st.olMu.Unlock()
		if ready {
			st.releaseFrame(pkt.Buf)
		}
	default:
		st.errs.Add(1)
	}
}

func (st *stage) releaseFrame(frame []byte) {
	st.released.Add(1)
	if st.next != "" {
		_ = st.logger.SendBlocking(st.next, frame)
	}
}

func mustCarrier() *wire.Packet {
	p, err := wire.BuildUDP(wire.UDPSpec{
		SrcMAC:  wire.MAC{0x02, 0xfb, 0, 0, 0, 1},
		DstMAC:  wire.MAC{0x02, 0xfb, 0, 0, 0, 2},
		Src:     wire.Addr4(169, 254, 1, 1),
		Dst:     wire.Addr4(169, 254, 1, 2),
		SrcPort: 0xFB00, DstPort: 0xFB00,
		Headroom: 128,
	})
	if err != nil {
		panic("ftmb: carrier build failed: " + err.Error())
	}
	return p
}
