package ftmb

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/ftsfc/ftc/internal/core"
	"github.com/ftsfc/ftc/internal/mbox"
	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/wire"
)

func sendAndCollect(t *testing.T, cfg Config, mbs []core.Middlebox, n int) (*Chain, []*wire.Packet, *netsim.Fabric) {
	t.Helper()
	f := netsim.New(netsim.Config{})
	gen := f.AddNode("gen", netsim.NodeConfig{QueueCap: 1 << 14})
	sink := f.AddNode("sink", netsim.NodeConfig{QueueCap: 1 << 14})
	c := NewChain(cfg, f, "t", mbs, "sink")
	c.Start()
	t.Cleanup(func() {
		c.Stop()
		f.Stop()
	})
	for i := 0; i < n; i++ {
		p, err := wire.BuildUDP(wire.UDPSpec{
			SrcMAC: wire.MAC{2, 0, 0, 0, 0, 1}, DstMAC: wire.MAC{2, 0, 0, 0, 0, 2},
			Src: wire.Addr4(10, 0, byte(i>>8), byte(i)), Dst: wire.Addr4(192, 0, 2, 1),
			SrcPort: uint16(1024 + i), DstPort: 80,
			Payload: []byte(fmt.Sprintf("p%05d", i)), Headroom: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Send(c.IngressID(), p.Buf); err != nil {
			t.Fatal(err)
		}
	}
	var out []*wire.Packet
	deadline := time.After(15 * time.Second)
	for len(out) < n {
		select {
		case <-deadline:
			t.Fatalf("collected %d of %d", len(out), n)
		default:
		}
		in, ok := sink.TryRecv(0)
		if !ok {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		p, err := wire.Parse(in.Frame)
		if err != nil {
			t.Fatalf("bad egress frame: %v", err)
		}
		out = append(out, p)
	}
	return c, out, f
}

func TestFTMBEndToEnd(t *testing.T) {
	mbs := []core.Middlebox{mbox.NewMonitor(1, 2), mbox.NewMonitor(1, 2)}
	c, pkts, _ := sendAndCollect(t, Config{Workers: 2}, mbs, 100)
	for _, p := range pkts {
		if p.HasTrailer() {
			t.Fatal("released packet still carries FTMB framing")
		}
		if !p.VerifyIPChecksum() || !p.VerifyL4Checksum() {
			t.Fatal("bad checksums on egress")
		}
	}
	// Both monitors counted all 100 packets.
	for i := 0; i < 2; i++ {
		var total uint64
		for g := 0; g < 2; g++ {
			if v, ok := c.Store(i).Get(fmt.Sprintf("pkt-count-%d", g)); ok {
				total += binary.BigEndian.Uint64(v)
			}
		}
		if total != 100 {
			t.Fatalf("stage %d counted %d", i, total)
		}
		if c.Released(i) != 100 {
			t.Fatalf("stage %d released %d", i, c.Released(i))
		}
	}
}

func TestFTMBUsesTwoServersPerMiddlebox(t *testing.T) {
	f := netsim.New(netsim.Config{})
	defer f.Stop()
	c := NewChain(Config{}, f, "t", []core.Middlebox{mbox.NewMonitor(1, 1), mbox.NewMonitor(1, 1), mbox.NewMonitor(1, 1)}, "")
	if c.Servers() != 6 {
		t.Fatalf("servers = %d, want 6", c.Servers())
	}
}

func TestFTMBWithNAT(t *testing.T) {
	nat := mbox.NewSimpleNAT(wire.Addr4(203, 0, 113, 1), 10000, 1000)
	_, pkts, _ := sendAndCollect(t, Config{Workers: 2}, []core.Middlebox{nat}, 50)
	seen := map[uint16]bool{}
	for _, p := range pkts {
		if p.IP.Src != wire.Addr4(203, 0, 113, 1) {
			t.Fatal("NAT did not translate under FTMB")
		}
		if seen[p.UDP.SrcPort] {
			t.Fatal("duplicate NAT binding")
		}
		seen[p.UDP.SrcPort] = true
	}
}

func TestFTMBSnapshotStallReducesThroughput(t *testing.T) {
	// With aggressive snapshot parameters the same offered load takes
	// measurably longer end to end.
	mbs := func() []core.Middlebox { return []core.Middlebox{mbox.NewMonitor(1, 1)} }
	start := time.Now()
	sendAndCollectB := func(cfg Config) time.Duration {
		t0 := time.Now()
		_, _, _ = sendAndCollect(t, cfg, mbs(), 300)
		return time.Since(t0)
	}
	plain := sendAndCollectB(Config{})
	stalled := sendAndCollectB(Config{SnapshotEvery: 3 * time.Millisecond, SnapshotStall: 2 * time.Millisecond})
	if stalled <= plain {
		t.Logf("plain=%v stalled=%v (timing-dependent; only logged)", plain, stalled)
	}
	_ = start
}

func TestFTMBConfigDefaults(t *testing.T) {
	c := Config{SnapshotEvery: 50 * time.Millisecond}.WithDefaults()
	if c.SnapshotStall != 6*time.Millisecond {
		t.Fatalf("default stall = %v", c.SnapshotStall)
	}
	if c.Partitions != 64 || c.Workers != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestPALTrailerRoundTripShape(t *testing.T) {
	acc := []palAccess{{partition: 3, seq: 9}, {partition: 1, seq: 2}}
	b := encodePALTrailer(42, acc)
	if b[0] != kindPAL {
		t.Fatal("kind")
	}
	if binary.BigEndian.Uint64(b[1:9]) != 42 {
		t.Fatal("id")
	}
	if binary.BigEndian.Uint16(b[9:11]) != 2 {
		t.Fatal("count")
	}
	d := encodeDataTrailer(7)
	if d[0] != kindData || binary.BigEndian.Uint64(d[1:9]) != 7 {
		t.Fatal("data trailer")
	}
}
