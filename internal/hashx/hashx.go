// Package hashx provides allocation-free FNV-1a hashing shared by every
// layer that hashes per packet or per key: state partitioning
// (state.Store/OCCStore.PartitionOf), the RSS flow hash (wire.RSSHash), and
// the five-tuple hash (wire.FiveTuple.Hash).
//
// The standard library's hash/fnv forces a heap allocation per hasher
// (fnv.New32a returns a pointer that escapes), which on the data plane means
// one allocation per key lookup. These helpers are plain functions over
// uint32/uint64 accumulators; they inline and keep the hot path on registers.
//
// The functions are bit-for-bit identical to hash/fnv's FNV-1a: replicas
// built on either implementation compute the same partition for the same key,
// which the replication protocol requires (a head and its followers must
// agree on partition numbering). hashx_test.go locks this in with golden
// vectors and a direct equivalence check against hash/fnv.
package hashx

// FNV-1a constants (FNV-0 offset basis hashed over "chongo <Landon Curt
// Noll> /\\../\\"), identical to hash/fnv.
const (
	Offset32 uint32 = 2166136261
	Prime32  uint32 = 16777619
	Offset64 uint64 = 14695981039346656037
	Prime64  uint64 = 1099511628211
)

// Sum32String returns the 32-bit FNV-1a hash of s, equal to
// fnv.New32a().Write([]byte(s)).Sum32() without the allocations.
func Sum32String(s string) uint32 {
	h := Offset32
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * Prime32
	}
	return h
}

// Sum32 returns the 32-bit FNV-1a hash of b.
func Sum32(b []byte) uint32 {
	h := Offset32
	for _, c := range b {
		h = (h ^ uint32(c)) * Prime32
	}
	return h
}

// Sum64 returns the 64-bit FNV-1a hash of b, equal to
// fnv.New64a().Write(b).Sum64().
func Sum64(b []byte) uint64 {
	h := Offset64
	for _, c := range b {
		h = (h ^ uint64(c)) * Prime64
	}
	return h
}

// Sum64String returns the 64-bit FNV-1a hash of s, equal to
// fnv.New64a().Write([]byte(s)).Sum64() without the allocations. The state
// tables use it for slot probing (h1 = group index, h2 = control byte) while
// PartitionOf stays on Sum32String — the partition mapping is pinned by the
// replication protocol and must not change.
func Sum64String(s string) uint64 {
	h := Offset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * Prime64
	}
	return h
}

// Mix64 folds b into a running 64-bit FNV-1a state. Start from Offset64.
// Use this to hash several fields without assembling them into one buffer.
func Mix64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * Prime64
	}
	return h
}

// MixByte64 folds a single byte into a running 64-bit FNV-1a state.
func MixByte64(h uint64, c byte) uint64 {
	return (h ^ uint64(c)) * Prime64
}
