package hashx

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// Golden vectors computed with hash/fnv. If these ever change, partition
// mappings change across replicas and recovery from pre-change snapshots
// breaks — treat any diff here as a protocol-breaking change, not a test to
// update.
var golden = []struct {
	in  string
	h32 uint32
	h64 uint64
}{
	{"", 2166136261, 14695981039346656037},
	{"a", 0xe40c292c, 0xaf63dc4c8601ec8c},
	{"ab", 0x4d2505ca, 0x089c4407b545986a},
	{"abc", 0x1a47e90b, 0xe71fa2190541574b},
	{"flowkey-0123", 0x311414e7, 0x4f605b1acf1f2ba7},
	{"client-10.0.0.1:5123", 0xffb663ec, 0xeedcc836ac144ecc},
}

func TestGoldenVectors(t *testing.T) {
	for _, g := range golden {
		// Recompute the golden values with the stdlib so a wrong table entry
		// cannot silently bless a wrong implementation.
		h32 := fnv.New32a()
		h32.Write([]byte(g.in))
		if want := h32.Sum32(); want != g.h32 {
			t.Fatalf("golden table wrong for %q: stdlib h32 = %#x, table says %#x", g.in, want, g.h32)
		}
		h64 := fnv.New64a()
		h64.Write([]byte(g.in))
		if want := h64.Sum64(); want != g.h64 {
			t.Fatalf("golden table wrong for %q: stdlib h64 = %#x, table says %#x", g.in, want, g.h64)
		}
		if got := Sum32String(g.in); got != g.h32 {
			t.Errorf("Sum32String(%q) = %#x, want %#x", g.in, got, g.h32)
		}
		if got := Sum32([]byte(g.in)); got != g.h32 {
			t.Errorf("Sum32(%q) = %#x, want %#x", g.in, got, g.h32)
		}
		if got := Sum64([]byte(g.in)); got != g.h64 {
			t.Errorf("Sum64(%q) = %#x, want %#x", g.in, got, g.h64)
		}
	}
}

func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		h32 := fnv.New32a()
		h32.Write(b)
		if got, want := Sum32(b), h32.Sum32(); got != want {
			t.Fatalf("Sum32 mismatch on %x: got %#x want %#x", b, got, want)
		}
		h64 := fnv.New64a()
		h64.Write(b)
		if got, want := Sum64(b), h64.Sum64(); got != want {
			t.Fatalf("Sum64 mismatch on %x: got %#x want %#x", b, got, want)
		}
	}
}

func TestMix64MatchesSum64(t *testing.T) {
	parts := [][]byte{[]byte("ab"), {0x00, 0xff}, nil, []byte("tail")}
	var whole []byte
	h := Offset64
	for _, p := range parts {
		whole = append(whole, p...)
		h = Mix64(h, p)
	}
	if want := Sum64(whole); h != want {
		t.Fatalf("Mix64 chain = %#x, Sum64 = %#x", h, want)
	}
	h2 := Offset64
	for _, c := range whole {
		h2 = MixByte64(h2, c)
	}
	if want := Sum64(whole); h2 != want {
		t.Fatalf("MixByte64 chain = %#x, Sum64 = %#x", h2, want)
	}
}

func TestAllocFree(t *testing.T) {
	key := "flowkey-0123"
	buf := []byte(key)
	if n := testing.AllocsPerRun(100, func() {
		_ = Sum32String(key)
		_ = Sum32(buf)
		_ = Sum64(buf)
	}); n != 0 {
		t.Fatalf("hashing allocated %.1f times per run, want 0", n)
	}
}
