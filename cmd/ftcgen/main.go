// Command ftcgen is the standalone traffic generator and sink for ftcd
// deployments: it sends synthetic multi-flow UDP workload frames to a
// chain's ingress and/or receives released packets, reporting throughput
// and latency.
//
// Generate against a chain and measure its egress:
//
//	ftcgen -target 127.0.0.1:7000 -listen 127.0.0.1:7999 -rate 50000 -duration 10s
//
// Sink-only (run before pointing a chain's -egress here):
//
//	ftcgen -listen 127.0.0.1:7999 -duration 60s
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/ftsfc/ftc/internal/metrics"
	"github.com/ftsfc/ftc/internal/tgen"
	"github.com/ftsfc/ftc/internal/trans"
	"github.com/ftsfc/ftc/internal/wire"
)

func main() {
	var (
		target   = flag.String("target", "", "chain ingress UDP address (empty: sink only)")
		listen   = flag.String("listen", "", "egress sink UDP address (empty: generate only)")
		rate     = flag.Float64("rate", 10000, "offered load in packets/s (0 = maximum)")
		duration = flag.Duration("duration", 10*time.Second, "run time")
		size     = flag.Int("size", 256, "frame size in bytes")
		flows    = flag.Int("flows", 64, "distinct flows")
	)
	flag.Parse()
	if *target == "" && *listen == "" {
		log.Fatal("ftcgen: need -target and/or -listen")
	}

	hist := metrics.NewHistogram()
	var received metrics.Counter

	if *listen != "" {
		addr, err := net.ResolveUDPAddr("udp", *listen)
		if err != nil {
			log.Fatalf("ftcgen: %v", err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			log.Fatalf("ftcgen: %v", err)
		}
		defer conn.Close()
		go sinkLoop(conn, hist, &received)
		log.Printf("ftcgen: sink on %s", conn.LocalAddr())
	}

	var sent uint64
	if *target != "" {
		conn, err := net.Dial("udp", *target)
		if err != nil {
			log.Fatalf("ftcgen: %v", err)
		}
		defer conn.Close()
		frames := buildFrames(*flows, *size)
		log.Printf("ftcgen: offering %.0f pps to %s for %v", *rate, *target, *duration)
		sent = generate(conn, frames, *rate, *duration)
	} else {
		time.Sleep(*duration)
	}
	// Drain stragglers.
	time.Sleep(200 * time.Millisecond)

	fmt.Printf("sent:     %d\n", sent)
	fmt.Printf("received: %d\n", received.Value())
	if hist.Count() > 0 {
		s := hist.Summarize()
		fmt.Printf("latency:  p50=%v p90=%v p99=%v max=%v mean=%v (n=%d)\n",
			s.P50, s.P90, s.P99, s.Max, s.Mean, s.Count)
	}
	if *duration > 0 && received.Value() > 0 {
		fmt.Printf("egress:   %.0f pps\n", float64(received.Value())/duration.Seconds())
	}
}

// buildFrames pre-builds one stampable template frame per flow with the
// tgen payload layout (magic | flow | seq | timestamp).
func buildFrames(flows, size int) [][]byte {
	if size < tgen.MinPacketSize {
		size = tgen.MinPacketSize
	}
	payloadLen := size - (wire.EthernetHeaderLen + wire.IPv4MinHeaderLen + wire.UDPHeaderLen)
	out := make([][]byte, flows)
	for i := range out {
		payload := make([]byte, payloadLen)
		binary.BigEndian.PutUint32(payload[0:4], 0xF7C0BEEF)
		binary.BigEndian.PutUint32(payload[4:8], uint32(i))
		p, err := wire.BuildUDP(wire.UDPSpec{
			SrcMAC:  wire.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)},
			DstMAC:  wire.MAC{0x02, 0x20, 0, 0, 0, 1},
			Src:     wire.Addr4(10, 10, byte(i>>8), byte(i)),
			Dst:     wire.Addr4(192, 0, 2, 1),
			SrcPort: uint16(1024 + i%60000), DstPort: 80,
			Payload: payload,
		})
		if err != nil {
			log.Fatalf("ftcgen: building flow %d: %v", i, err)
		}
		out[i] = p.Buf
	}
	return out
}

func generate(conn net.Conn, frames [][]byte, rate float64, d time.Duration) uint64 {
	payloadOff := wire.EthernetHeaderLen + wire.IPv4MinHeaderLen + wire.UDPHeaderLen
	var seq, sent uint64
	deadline := time.Now().Add(d)
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		frame := frames[i%len(frames)]
		seq++
		binary.BigEndian.PutUint64(frame[payloadOff+8:], seq)
		binary.BigEndian.PutUint64(frame[payloadOff+16:], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint16(frame[payloadOff-2:], 0) // zero UDP checksum
		if _, err := conn.Write(frame); err != nil {
			log.Printf("ftcgen: send: %v", err)
			break
		}
		sent++
		if interval > 0 {
			next = next.Add(interval)
			if sleep := time.Until(next); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	return sent
}

func sinkLoop(conn *net.UDPConn, hist *metrics.Histogram, received *metrics.Counter) {
	buf := make([]byte, trans.MaxFrame)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		now := time.Now().UnixNano()
		p, err := wire.Parse(buf[:n])
		if err != nil {
			continue
		}
		received.Inc()
		pay := p.Payload()
		if len(pay) >= 24 && binary.BigEndian.Uint32(pay[0:4]) == 0xF7C0BEEF {
			ts := int64(binary.BigEndian.Uint64(pay[16:24]))
			if ts > 0 && now > ts {
				hist.Record(time.Duration(now - ts))
			}
		}
	}
}
