// Command ftcgen is the standalone traffic generator and sink for ftcd
// deployments: it sends synthetic multi-flow UDP workload frames to a
// chain's ingress and/or receives released packets, reporting throughput
// and latency.
//
// Both directions speak the batched tunnel format of DESIGN.md §8: every
// datagram packs one or more length-prefixed frames. The generator
// coalesces up to -burst frames per datagram, but only when it is behind
// its -rate schedule — whenever pacing calls for a sleep the pending
// datagram is flushed first, so latency measurements stay per-packet
// honest at low rates and full bursts form only under load. With
// -sockets N the generator spreads flows across N source sockets (flow
// mod N, so per-flow order holds); since a chain replica's SO_REUSEPORT
// group hashes on the 4-tuple, N>1 is what fans ingress across the
// chain's receive sockets. The sink unpacks every datagram it receives
// from a chain's -egress.
//
// Generate against a chain and measure its egress:
//
//	ftcgen -target 127.0.0.1:7000 -listen 127.0.0.1:7999 -rate 50000 -duration 10s
//
// Sink-only (run before pointing a chain's -egress here):
//
//	ftcgen -listen 127.0.0.1:7999 -duration 60s
//
// Maximum-throughput blast with full coalescing:
//
//	ftcgen -target 127.0.0.1:7000 -listen 127.0.0.1:7999 -rate 0 -burst 32
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"github.com/ftsfc/ftc/internal/metrics"
	"github.com/ftsfc/ftc/internal/tgen"
	"github.com/ftsfc/ftc/internal/trans"
	"github.com/ftsfc/ftc/internal/wire"
)

func main() {
	var (
		target   = flag.String("target", "", "chain ingress UDP address (empty: sink only)")
		listen   = flag.String("listen", "", "egress sink UDP address (empty: generate only)")
		rate     = flag.Float64("rate", 10000, "offered load in packets/s (0 = maximum)")
		duration = flag.Duration("duration", 10*time.Second, "run time")
		size     = flag.Int("size", 256, "frame size in bytes")
		flows    = flag.Int("flows", 64, "distinct flows")
		skew     = flag.Float64("skew", 0, "Zipf flow-popularity parameter s > 1 (0 = uniform round-robin); flow 0 becomes the elephant")
		burst    = flag.Int("burst", 32, "max frames coalesced per ingress datagram (1 = per-packet)")
		budget   = flag.Int("mtu-budget", trans.DefaultMTUBudget, "ingress datagram packing budget in bytes")
		sockets  = flag.Int("sockets", 1, "source sockets to spread flows across (each is one 4-tuple, so N>1 exercises the chain's SO_REUSEPORT receive fan-out)")
	)
	flag.Parse()
	if *target == "" && *listen == "" {
		log.Fatal("ftcgen: need -target and/or -listen")
	}
	if *skew != 0 && *skew <= 1 {
		log.Fatalf("ftcgen: -skew %g invalid: the Zipf parameter must exceed 1", *skew)
	}

	hist := metrics.NewHistogram()
	var received metrics.Counter

	if *listen != "" {
		addr, err := net.ResolveUDPAddr("udp", *listen)
		if err != nil {
			log.Fatalf("ftcgen: %v", err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			log.Fatalf("ftcgen: %v", err)
		}
		defer conn.Close()
		go sinkLoop(conn, hist, &received)
		log.Printf("ftcgen: sink on %s", conn.LocalAddr())
	}

	var sent uint64
	if *target != "" {
		if *sockets < 1 {
			*sockets = 1
		}
		conns := make([]net.Conn, *sockets)
		for i := range conns {
			conn, err := net.Dial("udp", *target)
			if err != nil {
				log.Fatalf("ftcgen: %v", err)
			}
			defer conn.Close()
			conns[i] = conn
		}
		frames := buildFrames(*flows, *size)
		pick := func(i int) int { return i % len(frames) }
		if *skew > 1 {
			// Seeded draw so repeated runs offer the same flow sequence.
			z := rand.NewZipf(rand.New(rand.NewSource(1)), *skew, 1, uint64(len(frames)-1))
			pick = func(int) int { return int(z.Uint64()) }
		}
		log.Printf("ftcgen: offering %.0f pps to %s for %v (burst %d, skew %g, mtu budget %d, %d sockets)",
			*rate, *target, *duration, *burst, *skew, *budget, *sockets)
		sent = generate(conns, frames, pick, *rate, *duration, *burst, *budget)
	} else {
		time.Sleep(*duration)
	}
	// Drain stragglers.
	time.Sleep(200 * time.Millisecond)

	fmt.Printf("sent:     %d\n", sent)
	fmt.Printf("received: %d\n", received.Value())
	if hist.Count() > 0 {
		s := hist.Summarize()
		fmt.Printf("latency:  p50=%v p90=%v p99=%v max=%v mean=%v (n=%d)\n",
			s.P50, s.P90, s.P99, s.Max, s.Mean, s.Count)
	}
	if *duration > 0 && received.Value() > 0 {
		fmt.Printf("egress:   %.0f pps\n", float64(received.Value())/duration.Seconds())
	}
}

// buildFrames pre-builds one stampable template frame per flow with the
// tgen payload layout (magic | flow | seq | timestamp).
func buildFrames(flows, size int) [][]byte {
	if size < tgen.MinPacketSize {
		size = tgen.MinPacketSize
	}
	payloadLen := size - (wire.EthernetHeaderLen + wire.IPv4MinHeaderLen + wire.UDPHeaderLen)
	out := make([][]byte, flows)
	for i := range out {
		payload := make([]byte, payloadLen)
		binary.BigEndian.PutUint32(payload[0:4], 0xF7C0BEEF)
		binary.BigEndian.PutUint32(payload[4:8], uint32(i))
		p, err := wire.BuildUDP(wire.UDPSpec{
			SrcMAC:  wire.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)},
			DstMAC:  wire.MAC{0x02, 0x20, 0, 0, 0, 1},
			Src:     wire.Addr4(10, 10, byte(i>>8), byte(i)),
			Dst:     wire.Addr4(192, 0, 2, 1),
			SrcPort: uint16(1024 + i%60000), DstPort: 80,
			Payload: payload,
		})
		if err != nil {
			log.Fatalf("ftcgen: building flow %d: %v", i, err)
		}
		out[i] = p.Buf
	}
	return out
}

// genSock is one source socket with its pending packed datagram. Each
// socket is a distinct connected 4-tuple, and a chain replica's
// SO_REUSEPORT group hashes on the 4-tuple — so one ftcgen socket always
// lands on one receive socket, and spreading flows across -sockets is
// what exercises (and scales) the chain's receive fan-out.
type genSock struct {
	conn    net.Conn
	dgram   []byte
	inBatch int
}

func (g *genSock) flush() bool {
	if len(g.dgram) == 0 {
		return true
	}
	_, err := g.conn.Write(g.dgram)
	g.dgram = g.dgram[:0]
	g.inBatch = 0
	if err != nil {
		log.Printf("ftcgen: send: %v", err)
		return false
	}
	return true
}

// generate stamps and sends workload frames in the packed tunnel format,
// coalescing up to burst frames (within the MTU budget) per datagram on
// each source socket. A flow sticks to one socket for its lifetime
// (socket = flow mod len(conns)), preserving per-flow FIFO end to end.
// Every pending datagram on every socket is flushed before a pacing
// sleep, so datagrams only fill when the generator is behind schedule:
// -rate 0 (maximum load) sends full bursts, low rates send one frame per
// datagram and latency measurements stay per-packet honest.
func generate(conns []net.Conn, frames [][]byte, pick func(int) int, rate float64, d time.Duration, burst, budget int) uint64 {
	if burst < 1 {
		burst = 1
	}
	socks := make([]*genSock, len(conns))
	for i, c := range conns {
		socks[i] = &genSock{conn: c, dgram: make([]byte, 0, budget+trans.MaxFrame)}
	}
	flushAll := func() bool {
		ok := true
		for _, g := range socks {
			if !g.flush() {
				ok = false
			}
		}
		return ok
	}
	payloadOff := wire.EthernetHeaderLen + wire.IPv4MinHeaderLen + wire.UDPHeaderLen
	var seq, sent uint64
	deadline := time.Now().Add(d)
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		// AppendFrame copies the frame into the datagram immediately, so a
		// skewed pick repeating one flow within a datagram cannot alias.
		flow := pick(i)
		frame := frames[flow]
		g := socks[flow%len(socks)]
		seq++
		binary.BigEndian.PutUint64(frame[payloadOff+8:], seq)
		binary.BigEndian.PutUint64(frame[payloadOff+16:], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint16(frame[payloadOff-2:], 0) // zero UDP checksum
		if len(g.dgram) > 0 && len(g.dgram)+2+len(frame) > budget {
			if !g.flush() {
				break
			}
		}
		var err error
		if g.dgram, err = trans.AppendFrame(g.dgram, frame); err != nil {
			log.Printf("ftcgen: %v", err)
			break
		}
		sent++
		g.inBatch++
		if g.inBatch >= burst && !g.flush() {
			break
		}
		if interval > 0 {
			next = next.Add(interval)
			if sleep := time.Until(next); sleep > 0 {
				if !flushAll() {
					break
				}
				time.Sleep(sleep)
			}
		}
	}
	flushAll()
	return sent
}

// sinkLoop receives packed egress datagrams, unpacking every tunneled
// frame and recording its latency from the embedded timestamp.
func sinkLoop(conn *net.UDPConn, hist *metrics.Histogram, received *metrics.Counter) {
	buf := make([]byte, trans.MaxDatagram)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		now := time.Now().UnixNano()
		splitErr := trans.SplitFrames(buf[:n], func(frame []byte) {
			p, err := wire.Parse(frame)
			if err != nil {
				return
			}
			received.Inc()
			pay := p.Payload()
			if len(pay) >= 24 && binary.BigEndian.Uint32(pay[0:4]) == 0xF7C0BEEF {
				ts := int64(binary.BigEndian.Uint64(pay[16:24]))
				if ts > 0 && now > ts {
					hist.Record(time.Duration(now - ts))
				}
			}
		})
		if splitErr != nil {
			log.Printf("ftcgen: sink: %v", splitErr)
		}
	}
}
