// Command ftcd runs a single FTC chain replica as an OS process. The data
// plane is tunneled over UDP and the control plane (repair, recovery state
// fetch, heartbeats) over TCP, so a chain can span processes or machines.
//
// A three-middlebox chain on one host:
//
//	ftcd -index 0 -mb monitor -chain monitor,firewall,nat -f 1 \
//	     -listen-udp :7000 -listen-tcp :7100 \
//	     -peer 1=127.0.0.1:7001/127.0.0.1:7101 \
//	     -peer 2=127.0.0.1:7002/127.0.0.1:7102 \
//	     -burst 32 -mtu-budget 8972 \
//	     -egress 127.0.0.1:7999
//	ftcd -index 1 ... (and so on for each ring position)
//
// The data plane speaks the batched tunnel format of DESIGN.md §8: each
// UDP datagram packs up to -burst length-prefixed frames bound for the
// same peer, flushed early when a datagram would exceed -mtu-budget bytes.
// -burst also sets the replica's in-process vector-processing batch size,
// so one knob tunes the whole pipeline; -burst 1 reproduces the per-packet
// transport. On Linux the socket path moves whole vectors of those packed
// datagrams per syscall (sendmmsg/recvmmsg) across -sockets SO_REUSEPORT
// sockets; -no-mmsg falls back to one syscall per datagram with an
// unchanged wire format, so mixed deployments interoperate. Traffic enters
// by sending packed frames (as ftcgen sends them) to replica 0's UDP
// address; released packets leave from the last replica to -egress in the
// same packed format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/ftsfc/ftc/internal/core"
	"github.com/ftsfc/ftc/internal/mbox"
	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/trans"
	"github.com/ftsfc/ftc/internal/wire"
)

type peerFlags map[int]trans.Peer

func (p peerFlags) String() string { return fmt.Sprintf("%d peers", len(p)) }

func (p peerFlags) Set(v string) error {
	var idx int
	var udpAddr, tcpAddr string
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("peer %q: want index=udp/tcp", v)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &idx); err != nil {
		return fmt.Errorf("peer %q: bad index", v)
	}
	addrs := strings.SplitN(parts[1], "/", 2)
	udpAddr = addrs[0]
	if len(addrs) == 2 {
		tcpAddr = addrs[1]
	}
	p[idx] = trans.Peer{ID: ringID(idx), UDPAddr: udpAddr, TCPAddr: tcpAddr}
	return nil
}

func ringID(i int) netsim.NodeID { return netsim.NodeID(fmt.Sprintf("ftc-r%d", i)) }

// buildMB constructs a middlebox by name.
func buildMB(name string, workers int) (core.Middlebox, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "monitor":
		return mbox.NewMonitor(1, workers), nil
	case "firewall":
		return mbox.NewFirewall(nil, true), nil
	case "nat", "simplenat":
		return mbox.NewSimpleNAT(wire.Addr4(203, 0, 113, 1), 10000, 40000), nil
	case "mazunat":
		return mbox.NewMazuNAT(wire.Addr4(203, 0, 113, 1), 10000, 40000, wire.Addr4(10, 0, 0, 0), 8), nil
	case "gen":
		return mbox.NewGen(64, 16), nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown middlebox %q (monitor|firewall|nat|mazunat|gen|none)", name)
	}
}

func main() {
	var (
		index     = flag.Int("index", 0, "this replica's ring position")
		chainSpec = flag.String("chain", "monitor", "comma-separated middlebox list defining the chain")
		mbName    = flag.String("mb", "", "middlebox this replica hosts (defaults to chain[index])")
		f         = flag.Int("f", 1, "failures to tolerate")
		workers   = flag.Int("workers", 2, "packet worker threads")
		listenUDP = flag.String("listen-udp", "127.0.0.1:0", "data-plane listen address")
		listenTCP = flag.String("listen-tcp", "127.0.0.1:0", "control-plane listen address")
		egress    = flag.String("egress", "", "UDP address released packets are sent to (last replica only)")
		burst     = flag.Int("burst", 0, "frames per batch, in-process and on the tunnel (0 = adaptive NAPI-style sizing, 1 = per-packet)")
		maxBurst  = flag.Int("max-burst", netsim.DefaultMaxBurst, "adaptive burst ceiling (with -burst 0)")
		noSteal   = flag.Bool("no-steal", false, "pin workers 1:1 onto ingress queues instead of work stealing")
		stealFact = flag.Int("steal-factor", core.DefaultStealFactor, "steal partitions per worker (with stealing enabled)")
		mtuBudget = flag.Int("mtu-budget", trans.DefaultMTUBudget, "tunnel datagram packing budget in bytes")
		sockets   = flag.Int("sockets", 0, "SO_REUSEPORT data-plane sockets sharing the UDP port (0 = GOMAXPROCS; non-Linux always 1)")
		sockBuf   = flag.Int("sockbuf", 0, "requested SO_RCVBUF/SO_SNDBUF per data-plane socket in bytes (0 = OS default)")
		noMMsg    = flag.Bool("no-mmsg", false, "disable sendmmsg/recvmmsg batching, one syscall per datagram (wire format unchanged)")
		orchEns   = flag.String("orch-ensemble", "", "comma-separated orchestrator ensemble member addresses this replica accepts control commands from (logged for operators; discovery is the ensemble's job)")
		minTerm   = flag.Uint64("min-controller-term", 0, "preset the controller fence floor: control commands below this term are rejected, so a leader deposed while this replica was down cannot adopt it (DESIGN.md \u00a714)")
	)
	peers := peerFlags{}
	flag.Var(peers, "peer", "remote ring node: index=udpaddr[/tcpaddr] (repeatable)")
	flag.Parse()

	chainMBs := strings.Split(*chainSpec, ",")
	numMB := len(chainMBs)
	name := *mbName
	if name == "" && *index < numMB {
		name = chainMBs[*index]
	}
	mb, err := buildMB(name, *workers)
	if err != nil {
		log.Fatalf("ftcd: %v", err)
	}

	cfg := core.Config{F: *f, NumMB: numMB, Workers: *workers, Burst: *burst,
		MaxBurst: *maxBurst, NoSteal: *noSteal, StealFactor: *stealFact}.WithDefaults()
	ring := cfg.Ring()
	if *index < 0 || *index >= ring.M() {
		log.Fatalf("ftcd: index %d out of ring range 0..%d", *index, ring.M()-1)
	}

	fabric := netsim.New(netsim.Config{})
	defer fabric.Stop()

	local := fabric.AddNode(ringID(*index), netsim.NodeConfig{
		Queues:   cfg.NumIngressQueues(),
		QueueCap: 4096,
		Selector: wire.RSSSelector,
	})

	// Egress proxy: the bridge tunnels frames for this node to -egress.
	egressID := netsim.NodeID("")
	var peerList []trans.Peer
	for i := 0; i < ring.M(); i++ {
		if i == *index {
			continue
		}
		p, ok := peers[i]
		if !ok {
			log.Fatalf("ftcd: missing -peer for ring position %d", i)
		}
		peerList = append(peerList, p)
	}
	if *egress != "" {
		egressID = "ftc-egress"
		peerList = append(peerList, trans.Peer{ID: egressID, UDPAddr: *egress})
	}

	ringIDs := make([]netsim.NodeID, ring.M())
	for i := range ringIDs {
		ringIDs[i] = ringID(i)
	}
	replica := core.NewReplica(cfg, core.ReplicaSpec{
		Index:   *index,
		Sim:     local,
		Fabric:  fabric,
		RingIDs: ringIDs,
		Egress:  egressID,
		MB:      mb,
	})
	if *minTerm > 0 {
		// Raise the fence before the control plane is reachable: a boot-time
		// floor closes the window where a deposed leader could adopt a
		// freshly restarted replica with stale recovery commands.
		replica.FenceTerm(*minTerm)
	}
	replica.Start()
	defer replica.Stop()

	bridge, err := trans.NewBridge(fabric, local.ID(), *listenUDP, *listenTCP, peerList,
		trans.Config{Burst: *burst, MTUBudget: *mtuBudget,
			Sockets: *sockets, SocketBuf: *sockBuf, NoMMsg: *noMMsg})
	if err != nil {
		log.Fatalf("ftcd: %v", err)
	}
	defer bridge.Close()
	udpAddr, tcpAddr := bridge.Addrs()
	mbDesc := "extension replica (no middlebox)"
	if mb != nil {
		mbDesc = mb.Name()
	}
	log.Printf("ftcd: ring %d/%d hosting %s", *index, ring.M(), mbDesc)
	if *orchEns != "" {
		members := strings.Split(*orchEns, ",")
		log.Printf("ftcd: orchestrator ensemble: %d members (%s), fence floor term %d",
			len(members), *orchEns, replica.ControllerTerm())
	}
	burstDesc := fmt.Sprintf("%d", cfg.Burst)
	if cfg.Burst == 0 {
		burstDesc = fmt.Sprintf("adaptive(max %d)", cfg.MaxBurst)
	}
	bs := bridge.Stats()
	// Socket-buffer truth logging: the kernel clamps (and on Linux
	// doubles) setsockopt requests, so report what it actually granted.
	log.Printf("ftcd: data plane %s, control plane %s (burst %s, %d ingress queues, mtu budget %d, %d sockets, rcvbuf %d, sndbuf %d)",
		udpAddr, tcpAddr, burstDesc, local.NumQueues(), *mtuBudget,
		bs.Sockets, bs.EffRcvBuf, bs.EffSndBuf)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	s := replica.Stats()
	log.Printf("ftcd: rx=%d tx=%d egress=%d filtered=%d repairs=%d fenced_cmds=%d",
		s.RxFrames.Load(), s.TxFrames.Load(), s.Egress.Load(),
		s.Filtered.Load(), s.Repairs.Load(), s.FencedCmds.Load())
	// Goodput accounting on this replica's inter-replica hop: application
	// payload vs piggyback overhead vs total bytes sent (see core.Stats).
	app, pb, wireB := s.AppBytesOut.Load(), s.PiggybackBytesOut.Load(), s.WireBytesOut.Load()
	goodput := 0.0
	if wireB > 0 {
		goodput = float64(app) / float64(wireB)
	}
	log.Printf("ftcd: goodput app=%dB piggyback=%dB wire=%dB ratio=%.3f",
		app, pb, wireB, goodput)
	ts := bridge.Stats()
	log.Printf("ftcd: tunnel out=%d frames/%d dgrams in=%d frames/%d dgrams oversize=%d truncated=%d",
		ts.FramesOut, ts.DatagramsOut, ts.FramesIn, ts.DatagramsIn,
		ts.OversizeDrops, ts.TruncatedDatagrams)
	log.Printf("ftcd: tunnel syscalls send=%d recv=%d over %d sockets (rcvbuf %d, sndbuf %d)",
		ts.SendSyscalls, ts.RecvSyscalls, ts.Sockets, ts.EffRcvBuf, ts.EffSndBuf)
	sched := replica.Sched()
	log.Printf("ftcd: sched steals=%d burst=%d clamps=%d queue depths=%v",
		sched.Steals.Value(), sched.Burst.Value(), local.Clamps(),
		local.QueueDepths(nil))
}
