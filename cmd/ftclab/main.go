// Command ftclab regenerates the paper's evaluation (§7): every table and
// figure, plus the design-choice ablations, printed as aligned text tables
// with the paper's reference numbers in the notes.
//
// Usage:
//
//	ftclab [-quick] [-runtime 1s] [experiment ...]
//	ftclab -chaos-seed N
//	ftclab -fleet scenario.yaml [-trace]
//
// Experiments: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 failover ablate. With no arguments, all experiments run in order.
// failover crashes a replica, kills the orchestrator-ensemble leader at
// each replicated recovery phase, and reports how the successor resumed
// the in-flight recovery (DESIGN.md §14).
//
// -chaos-seed replays one deterministic fault-injection campaign (the same
// schedule `go test ./internal/chaos -chaos.seed=N` runs) with the event
// trace on stderr, and exits 1 if any invariant is violated — the debugging
// entry point for a seed that failed in CI.
//
// -fleet replays a multi-chain scenario file (see scenarios/) through the
// chain broker: chains arrive, pass admission control against the shared
// server pool, carry steered traffic, survive scheduled server crashes, and
// are reclaimed on TTL expiry. The fleet tables print on stdout; the exit
// code is 1 if the run reports any violation (wedged chains, divergent
// stores, unrestored replicas, SLA or downtime overruns). -trace streams
// the broker's event log to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/ftsfc/ftc/internal/chaos"
	"github.com/ftsfc/ftc/internal/exp"
	"github.com/ftsfc/ftc/internal/fleet"
)

func main() {
	quickFlag := flag.Bool("quick", false, "short measurement windows (smoke run)")
	runTime := flag.Duration("runtime", time.Second, "measurement window per data point")
	flows := flag.Int("flows", 128, "generator flows")
	chaosSeed := flag.Int64("chaos-seed", 0, "replay this chaos campaign seed with a verbose trace and exit")
	fleetPath := flag.String("fleet", "", "replay this fleet scenario YAML through the chain broker and exit")
	traceFlag := flag.Bool("trace", false, "with -fleet: stream the broker event log to stderr")
	flag.Parse()

	if *chaosSeed != 0 {
		os.Exit(replayChaos(*chaosSeed))
	}
	if *fleetPath != "" {
		os.Exit(replayFleet(*fleetPath, *traceFlag))
	}

	p := exp.Params{RunTime: *runTime, Flows: *flows}
	if *quickFlag {
		p.RunTime = 150 * time.Millisecond
		p.Samples = 5
	}

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "fig13", "failover", "ablate"}
	}
	exitCode := 0
	for _, name := range wanted {
		if err := run(strings.ToLower(name), p); err != nil {
			fmt.Fprintf(os.Stderr, "ftclab: %s: %v\n", name, err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// replayChaos derives and runs the campaign for one seed, tracing every
// scheduled event to stderr, and returns the process exit code.
func replayChaos(seed int64) int {
	c := chaos.Derive(seed)
	if err := c.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ftclab: seed %d derived an invalid schedule: %v\n", seed, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "chaos: replaying seed %d: f=%d engine=%s nosteal=%v chain=%d flows=%d packets=%d episodes=%d linkfaults=%d\n",
		seed, c.F, c.Engine, c.NoSteal, c.ChainLen, c.Flows, c.Packets, len(c.Episodes), len(c.LinkFaults))
	res := chaos.Run(c, chaos.Options{Trace: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
	}})
	fmt.Println(res.OneLine())
	if res.Failed() {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "ftclab: seed %d: %s\n", seed, v)
		}
		return 1
	}
	return 0
}

// replayFleet runs one scenario file through the chain broker, prints the
// fleet tables, and returns the process exit code (1 on any violation).
func replayFleet(path string, trace bool) int {
	scn, err := fleet.LoadScenario(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftclab: fleet: %v\n", err)
		return 1
	}
	opt := fleet.Options{}
	if trace {
		opt.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
		}
	}
	rep, err := fleet.Run(scn, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftclab: fleet: %v\n", err)
		return 1
	}
	for _, t := range exp.FleetTables(rep) {
		fmt.Println(t)
	}
	if v := rep.Violations(); len(v) > 0 {
		for _, msg := range v {
			fmt.Fprintf(os.Stderr, "ftclab: fleet: VIOLATION: %s\n", msg)
		}
		return 1
	}
	return 0
}

func run(name string, p exp.Params) error {
	show := func(t *exp.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}
	switch name {
	case "table1":
		return show(exp.Table1(), nil)
	case "table2":
		return show(exp.Table2(p))
	case "fig5":
		return show(exp.Fig5(p))
	case "fig6":
		return show(exp.Fig6(p))
	case "fig7":
		return show(exp.Fig7(p))
	case "fig8":
		tables, err := exp.Fig8(p)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return nil
	case "fig9":
		return show(exp.Fig9(p))
	case "fig10":
		return show(exp.Fig10(p))
	case "fig11":
		return show(exp.Fig11(p))
	case "fig12":
		return show(exp.Fig12(p))
	case "fig13":
		return show(exp.Fig13(p))
	case "failover":
		return show(exp.FigFailover(p))
	case "ablate":
		iters := int(p.WithDefaults().RunTime / (200 * time.Nanosecond))
		if iters < 2000 {
			iters = 2000
		}
		fmt.Println(exp.AblationPiggyback(iters))
		fmt.Println(exp.AblationDependencyVectors(iters/4, 8))
		fmt.Println(exp.AblationServers(5, 1))
		fmt.Println(exp.AblationServers(2, 2))
		fmt.Println(exp.AblationTransactions(iters/8, 8))
		fmt.Println(exp.AblationEngines(iters/8, 8))
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
