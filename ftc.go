// Package ftc is the public API of the FTC library: fault-tolerant service
// function chaining as described in "Fault Tolerant Service Function
// Chaining" (SIGCOMM 2020).
//
// FTC replicates middlebox state along the chain itself: state updates
// produced by each packet transaction are piggybacked onto the packet and
// replicated at the servers hosting the next middleboxes, so a chain of
// n ≥ f+1 middleboxes tolerates f fail-stop failures with no dedicated
// replica servers.
//
// # Quick start
//
//	dep, err := ftc.Deploy([]ftc.Middlebox{
//		ftc.NewFirewall(nil, true),
//		ftc.NewMonitor(1, 4),
//		ftc.NewSimpleNAT(ftc.Addr4(203, 0, 113, 1), 10000, 20000),
//	}, ftc.Options{F: 1, Workers: 4})
//	if err != nil { ... }
//	defer dep.Close()
//
//	dep.Generator.Blast(time.Second)       // offer traffic
//	fmt.Println(dep.Sink.Received())       // count what exits the chain
//	dep.Chain.Crash(1)                     // fail-stop a middlebox
//	report := dep.Orchestrator.Recover(1)  // detect + repair
//
// Custom middleboxes implement the Middlebox interface; all state accesses
// go through the transactional store (Txn), which is what makes them
// recoverable. See the examples directory for complete programs.
package ftc

import (
	"fmt"
	"time"

	"github.com/ftsfc/ftc/internal/core"
	"github.com/ftsfc/ftc/internal/mbox"
	"github.com/ftsfc/ftc/internal/metrics"
	"github.com/ftsfc/ftc/internal/netsim"
	"github.com/ftsfc/ftc/internal/orch"
	"github.com/ftsfc/ftc/internal/state"
	"github.com/ftsfc/ftc/internal/tgen"
	"github.com/ftsfc/ftc/internal/wire"
)

// Re-exported protocol types. Middlebox authors implement Middlebox and use
// Txn for all state access; Packet provides in-place header access.
type (
	// Middlebox is a network function running under FTC.
	Middlebox = core.Middlebox
	// Verdict is a middlebox's decision for a packet.
	Verdict = core.Verdict
	// Txn is a packet transaction over the middlebox state store.
	Txn = state.Txn
	// Packet is a parsed network packet.
	Packet = wire.Packet
	// FiveTuple identifies a transport flow.
	FiveTuple = wire.FiveTuple
	// IPv4Addr is an IPv4 address.
	IPv4Addr = wire.IPv4Addr
	// Chain manages the replicas of a deployed chain.
	Chain = core.Chain
	// ChainConfig tunes the FTC protocol.
	ChainConfig = core.Config
	// Replica is one chain node.
	Replica = core.Replica
	// Fabric is the simulated network substrate.
	Fabric = netsim.Fabric
	// FabricConfig tunes the fabric.
	FabricConfig = netsim.Config
	// LinkProfile describes link latency/loss/bandwidth behaviour.
	LinkProfile = netsim.LinkProfile
	// NodeID names a fabric node.
	NodeID = netsim.NodeID
	// Orchestrator monitors and repairs a chain.
	Orchestrator = orch.Orchestrator
	// OrchestratorConfig tunes failure detection.
	OrchestratorConfig = orch.Config
	// RecoveryReport is the timing breakdown of one recovery.
	RecoveryReport = orch.RecoveryReport
	// Generator produces synthetic workloads.
	Generator = tgen.Generator
	// Sink measures chain egress.
	Sink = tgen.Sink
	// TrafficSpec describes a synthetic workload.
	TrafficSpec = tgen.Spec
	// Histogram is a latency histogram.
	Histogram = metrics.Histogram
	// LatencySummary is a percentile snapshot.
	LatencySummary = metrics.Summary
	// FirewallRule is a rule of the bundled firewall middlebox.
	FirewallRule = mbox.Rule
)

// Middlebox verdicts.
const (
	Forward = core.Forward
	Drop    = core.Drop
)

// Addr4 builds an IPv4 address from four octets.
func Addr4(a, b, c, d byte) IPv4Addr { return wire.Addr4(a, b, c, d) }

// NewFabric creates a network fabric.
func NewFabric(cfg FabricConfig) *Fabric { return netsim.New(cfg) }

// NewChain deploys (without starting) an FTC chain on a fabric.
func NewChain(cfg ChainConfig, fabric *Fabric, name string, mbs []Middlebox, egress NodeID) *Chain {
	return core.NewChain(cfg, fabric, name, mbs, egress)
}

// NewOrchestrator creates an orchestrator for a chain.
func NewOrchestrator(cfg OrchestratorConfig, fabric *Fabric, id NodeID, chain *Chain) *Orchestrator {
	return orch.New(cfg, fabric, id, chain)
}

// NewGenerator creates a traffic generator on the fabric.
func NewGenerator(fabric *Fabric, id, target NodeID, spec TrafficSpec) (*Generator, error) {
	return tgen.NewGenerator(fabric, id, target, spec)
}

// NewSink creates a measuring sink on the fabric.
func NewSink(fabric *Fabric, id NodeID) *Sink { return tgen.NewSink(fabric, id) }

// Bundled middleboxes (Table 1 of the paper).

// NewMonitor returns a packet-counting middlebox with the given sharing
// level across the given worker count.
func NewMonitor(sharing, workers int) Middlebox { return mbox.NewMonitor(sharing, workers) }

// NewGen returns a write-heavy middlebox writing stateSize bytes per packet
// over the given number of keys.
func NewGen(stateSize, keys int) Middlebox { return mbox.NewGen(stateSize, keys) }

// NewSimpleNAT returns a basic source NAT.
func NewSimpleNAT(extIP IPv4Addr, portBase, portCount uint16) Middlebox {
	return mbox.NewSimpleNAT(extIP, portBase, portCount)
}

// NewMazuNAT returns the commercial-NAT-core middlebox.
func NewMazuNAT(extIP IPv4Addr, portBase, portCount uint16, internalNet IPv4Addr, internalBits uint8) Middlebox {
	return mbox.NewMazuNAT(extIP, portBase, portCount, internalNet, internalBits)
}

// NewFirewall returns a stateless rule-based firewall.
func NewFirewall(rules []FirewallRule, defaultAllow bool) Middlebox {
	return mbox.NewFirewall(rules, defaultAllow)
}

// Options configures Deploy.
type Options struct {
	// F is the number of failures to tolerate (default 1).
	F int
	// Workers is the number of packet threads per replica (default 1).
	Workers int
	// Partitions is the state partition count (default 64).
	Partitions int
	// Traffic describes the synthetic workload (defaults applied).
	Traffic TrafficSpec
	// Fabric tunes the network substrate (latency, loss, ...).
	Fabric FabricConfig
	// Heartbeat tunes failure detection.
	Heartbeat OrchestratorConfig
	// ChainName prefixes fabric node names (default "ftc").
	ChainName string
	// OptimisticState selects the optimistic (OCC) state engine instead of
	// the default wound-wait two-phase locking.
	OptimisticState bool
}

// Deployment is a fully assembled FTC system: fabric, chain, orchestrator,
// and traffic harness.
type Deployment struct {
	Fabric       *Fabric
	Chain        *Chain
	Orchestrator *Orchestrator
	Generator    *Generator
	Sink         *Sink
}

// Deploy assembles and starts a complete FTC system running the given
// middleboxes, with a traffic generator aimed at the chain ingress and a
// measuring sink at its egress. The orchestrator's failure detector is
// started; call Close to tear everything down.
func Deploy(mbs []Middlebox, opt Options) (*Deployment, error) {
	if len(mbs) == 0 {
		return nil, fmt.Errorf("ftc: no middleboxes")
	}
	name := opt.ChainName
	if name == "" {
		name = "ftc"
	}
	fabric := netsim.New(opt.Fabric)
	sink := tgen.NewSink(fabric, NodeID(name+"-sink"))
	cfg := core.Config{
		F:          opt.F,
		Workers:    opt.Workers,
		Partitions: opt.Partitions,
	}
	if opt.OptimisticState {
		cfg.NewStore = func(partitions int) state.Backend { return state.NewOCC(partitions) }
	}
	chain := core.NewChain(cfg, fabric, name, mbs, sink.ID())
	chain.Start()
	gen, err := tgen.NewGenerator(fabric, NodeID(name+"-gen"), chain.IngressID(), opt.Traffic)
	if err != nil {
		fabric.Stop()
		return nil, err
	}
	o := orch.New(opt.Heartbeat, fabric, NodeID(name+"-orch"), chain)
	o.Start()
	return &Deployment{
		Fabric:       fabric,
		Chain:        chain,
		Orchestrator: o,
		Generator:    gen,
		Sink:         sink,
	}, nil
}

// WaitForEgress blocks until the sink has received at least n packets or
// the timeout expires, returning the number received.
func (d *Deployment) WaitForEgress(n uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for d.Sink.Received() < n && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	return d.Sink.Received()
}

// Close tears down the deployment.
func (d *Deployment) Close() {
	d.Orchestrator.Stop()
	d.Chain.Stop()
	d.Sink.Stop()
	d.Fabric.Stop()
}
